"""Unit tests for :mod:`repro.faults.plan`: validation, ordering, seeding."""

from __future__ import annotations

import pytest

from repro.experiments.parallel import scenario_fingerprint
from repro.experiments.scenarios import MINIMAL, traffic_load_scenario
from repro.faults import (
    FaultPlan,
    LinkDegradation,
    NodeArrival,
    NodeCrash,
    NodeRejoin,
    ParentLoss,
)


class TestValidation:
    def test_negative_crash_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultPlan(crashes=(NodeCrash(time_s=-1.0, node_id=3),))

    def test_negative_detect_delay_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultPlan(crashes=(NodeCrash(time_s=1.0, node_id=3, detect_after_s=-0.5),))

    def test_rejoin_without_matching_crash_rejected(self):
        with pytest.raises(ValueError, match="no matching crash"):
            FaultPlan(rejoins=(NodeRejoin(time_s=5.0, node_id=3),))

    @pytest.mark.parametrize("scale", [0.0, -0.2, 1.5])
    def test_prr_scale_outside_unit_interval_rejected(self, scale):
        with pytest.raises(ValueError, match="prr_scale"):
            FaultPlan(
                link_epochs=(
                    LinkDegradation(time_s=1.0, prr_scale=scale, duration_s=2.0),
                )
            )

    def test_non_positive_epoch_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            FaultPlan(
                link_epochs=(
                    LinkDegradation(time_s=1.0, prr_scale=0.5, duration_s=0.0),
                )
            )

    def test_is_empty(self):
        assert FaultPlan().is_empty()
        assert not FaultPlan(
            parent_losses=(ParentLoss(time_s=1.0, node_id=2),)
        ).is_empty()
        assert not FaultPlan(arrivals=(NodeArrival(time_s=1.0, node_id=2),)).is_empty()

    def test_negative_arrival_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultPlan(arrivals=(NodeArrival(time_s=-1.0, node_id=3),))

    def test_duplicate_arrival_rejected(self):
        with pytest.raises(ValueError, match="arrives more than once"):
            FaultPlan(
                arrivals=(
                    NodeArrival(time_s=1.0, node_id=3),
                    NodeArrival(time_s=2.0, node_id=3),
                )
            )

    def test_crash_before_arrival_rejected(self):
        # A node cannot die before it has ever powered on.
        with pytest.raises(ValueError, match="before arriving"):
            FaultPlan(
                crashes=(NodeCrash(time_s=5.0, node_id=3),),
                rejoins=(NodeRejoin(time_s=8.0, node_id=3),),
                arrivals=(NodeArrival(time_s=10.0, node_id=3),),
            )

    def test_crash_after_arrival_accepted(self):
        plan = FaultPlan(
            crashes=(NodeCrash(time_s=20.0, node_id=3),),
            arrivals=(NodeArrival(time_s=10.0, node_id=3),),
        )
        assert len(plan.arrivals) == 1


class TestAlternation:
    """Regression: per-node crash/rejoin sequences must alternate crash-first.

    An earlier revision accepted double-crash plans and silently no-op'ed
    the second crash at run time (the injector guards on ``alive``); the
    plan validator now rejects them up front.
    """

    def test_double_crash_without_rejoin_rejected(self):
        with pytest.raises(ValueError, match="alternate"):
            FaultPlan(
                crashes=(
                    NodeCrash(time_s=5.0, node_id=3),
                    NodeCrash(time_s=9.0, node_id=3),
                ),
                rejoins=(NodeRejoin(time_s=12.0, node_id=3),),
            )

    def test_rejoin_before_crash_rejected(self):
        with pytest.raises(ValueError, match="alternate"):
            FaultPlan(
                crashes=(NodeCrash(time_s=9.0, node_id=3),),
                rejoins=(NodeRejoin(time_s=5.0, node_id=3),),
            )

    def test_double_rejoin_after_one_crash_rejected(self):
        with pytest.raises(ValueError, match="alternate"):
            FaultPlan(
                crashes=(NodeCrash(time_s=5.0, node_id=3),),
                rejoins=(
                    NodeRejoin(time_s=9.0, node_id=3),
                    NodeRejoin(time_s=12.0, node_id=3),
                ),
            )

    def test_crash_rejoin_crash_rejoin_accepted(self):
        plan = FaultPlan(
            crashes=(
                NodeCrash(time_s=5.0, node_id=3),
                NodeCrash(time_s=15.0, node_id=3),
            ),
            rejoins=(
                NodeRejoin(time_s=10.0, node_id=3),
                NodeRejoin(time_s=20.0, node_id=3),
            ),
        )
        assert len(plan.crashes) == 2

    def test_trailing_crash_without_rejoin_accepted(self):
        # A node may stay down for the rest of the run.
        plan = FaultPlan(crashes=(NodeCrash(time_s=5.0, node_id=3),))
        assert plan.rejoins == ()


class TestEventOrdering:
    def test_events_sorted_by_time(self):
        plan = FaultPlan(
            crashes=(NodeCrash(time_s=9.0, node_id=3),),
            rejoins=(NodeRejoin(time_s=15.0, node_id=3),),
            link_epochs=(LinkDegradation(time_s=4.0, prr_scale=0.5, duration_s=2.0),),
            parent_losses=(ParentLoss(time_s=12.0, node_id=5),),
        )
        times = [time_s for time_s, _order, _event in plan.events()]
        assert times == sorted(times) == [4.0, 9.0, 12.0, 15.0]

    def test_same_instant_tie_break_is_deterministic(self):
        """Degrade fires before crash, crash before rejoin, rejoin before
        parent loss when all share one fire time."""
        plan = FaultPlan(
            crashes=(NodeCrash(time_s=10.0, node_id=3),),
            rejoins=(NodeRejoin(time_s=10.0, node_id=3),),
            link_epochs=(LinkDegradation(time_s=10.0, prr_scale=0.5, duration_s=1.0),),
            parent_losses=(ParentLoss(time_s=10.0, node_id=5),),
        )
        kinds = [type(event) for _time, _order, event in plan.events()]
        assert kinds == [LinkDegradation, NodeCrash, NodeRejoin, ParentLoss]

    def test_arrival_fires_last_at_same_instant(self):
        plan = FaultPlan(
            crashes=(NodeCrash(time_s=10.0, node_id=3),),
            parent_losses=(ParentLoss(time_s=10.0, node_id=5),),
            arrivals=(NodeArrival(time_s=10.0, node_id=6),),
        )
        kinds = [type(event) for _time, _order, event in plan.events()]
        assert kinds == [NodeCrash, ParentLoss, NodeArrival]


class TestChurnFactory:
    CANDIDATES = [1, 2, 3, 4, 5, 6, 8, 9]

    def test_same_seed_same_plan(self):
        first = FaultPlan.churn(self.CANDIDATES, seed=7, num_crashes=3)
        second = FaultPlan.churn(self.CANDIDATES, seed=7, num_crashes=3)
        assert first == second

    def test_different_seed_can_differ(self):
        plans = {
            FaultPlan.churn(self.CANDIDATES, seed=seed, num_crashes=3).crashes
            for seed in range(8)
        }
        assert len(plans) > 1

    def test_victims_come_from_candidates_without_replacement(self):
        plan = FaultPlan.churn(self.CANDIDATES, seed=2, num_crashes=4)
        victims = [crash.node_id for crash in plan.crashes]
        assert len(set(victims)) == 4
        assert set(victims) <= set(self.CANDIDATES)

    def test_every_crash_gets_a_rejoin(self):
        plan = FaultPlan.churn(
            self.CANDIDATES, seed=1, num_crashes=2, rejoin_after_s=5.0
        )
        assert len(plan.rejoins) == 2
        by_node = {rejoin.node_id: rejoin for rejoin in plan.rejoins}
        for crash in plan.crashes:
            assert by_node[crash.node_id].time_s == crash.time_s + 5.0

    def test_degrade_and_parent_loss_gated_on_positive_times(self):
        bare = FaultPlan.churn(self.CANDIDATES, seed=1, num_crashes=1)
        assert bare.link_epochs == ()
        assert bare.parent_losses == ()
        full = FaultPlan.churn(
            self.CANDIDATES,
            seed=1,
            num_crashes=1,
            degrade_at_s=40.0,
            parent_loss_at_s=50.0,
        )
        assert len(full.link_epochs) == 1
        assert len(full.parent_losses) == 1
        # The parent-loss victim survives the crashes.
        victims = {crash.node_id for crash in full.crashes}
        assert full.parent_losses[0].node_id not in victims

    def test_too_many_crashes_rejected(self):
        with pytest.raises(ValueError, match="cannot crash"):
            FaultPlan.churn([1, 2], num_crashes=3)

    def test_arrival_draws_never_perturb_legacy_plans(self):
        """Plans built without arrivals are bit-identical to the historic
        factory output: the arrival draws happen after every legacy draw."""
        legacy = FaultPlan.churn(
            self.CANDIDATES, seed=3, num_crashes=2, degrade_at_s=40.0,
            parent_loss_at_s=50.0,
        )
        with_arrivals = FaultPlan.churn(
            self.CANDIDATES, seed=3, num_crashes=2, degrade_at_s=40.0,
            parent_loss_at_s=50.0, num_arrivals=2, arrival_window=(60.0, 70.0),
        )
        assert with_arrivals.crashes == legacy.crashes
        assert with_arrivals.rejoins == legacy.rejoins
        assert with_arrivals.link_epochs == legacy.link_epochs
        assert with_arrivals.parent_losses == legacy.parent_losses
        assert len(with_arrivals.arrivals) == 2

    def test_arrivals_avoid_crash_and_parent_loss_victims(self):
        plan = FaultPlan.churn(
            self.CANDIDATES, seed=5, num_crashes=3, parent_loss_at_s=50.0,
            num_arrivals=4, arrival_window=(60.0, 80.0),
        )
        taken = {crash.node_id for crash in plan.crashes}
        taken.update(loss.node_id for loss in plan.parent_losses)
        arrivers = {arrival.node_id for arrival in plan.arrivals}
        assert not (arrivers & taken)
        assert arrivers <= set(self.CANDIDATES)

    def test_arrival_times_spread_across_window(self):
        plan = FaultPlan.churn(
            self.CANDIDATES, seed=1, num_crashes=1,
            num_arrivals=2, arrival_window=(60.0, 70.0),
        )
        assert [a.time_s for a in plan.arrivals] == [60.0, 65.0]

    def test_too_many_arrivals_rejected(self):
        with pytest.raises(ValueError, match="cannot arrive"):
            FaultPlan.churn(
                [1, 2, 3], num_crashes=2, num_arrivals=2,
                arrival_window=(60.0, 70.0),
            )


class TestFingerprinting:
    def _scenario(self, plan):
        from dataclasses import replace

        base = traffic_load_scenario(rate_ppm=60.0, scheduler=MINIMAL)
        return replace(base, faults=plan)

    def test_plan_participates_in_scenario_fingerprint(self):
        without = self._scenario(None)
        with_plan = self._scenario(
            FaultPlan(crashes=(NodeCrash(time_s=40.0, node_id=3),))
        )
        shifted = self._scenario(
            FaultPlan(crashes=(NodeCrash(time_s=41.0, node_id=3),))
        )
        prints = {
            scenario_fingerprint(without),
            scenario_fingerprint(with_plan),
            scenario_fingerprint(shifted),
        }
        assert len(prints) == 3

    def test_identical_plans_fingerprint_identically(self):
        first = self._scenario(FaultPlan.churn([1, 2, 3], seed=4, num_crashes=2))
        second = self._scenario(FaultPlan.churn([1, 2, 3], seed=4, num_crashes=2))
        assert scenario_fingerprint(first) == scenario_fingerprint(second)

    def test_arrivals_change_the_fingerprint(self):
        bare = self._scenario(FaultPlan())
        with_arrival = self._scenario(
            FaultPlan(arrivals=(NodeArrival(time_s=40.0, node_id=3),))
        )
        shifted = self._scenario(
            FaultPlan(arrivals=(NodeArrival(time_s=41.0, node_id=3),))
        )
        prints = {
            scenario_fingerprint(bare),
            scenario_fingerprint(with_arrival),
            scenario_fingerprint(shifted),
        }
        assert len(prints) == 3
