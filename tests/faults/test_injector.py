"""Unit tests for :class:`repro.faults.FaultInjector` against live networks."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments.scenarios import MINIMAL, traffic_load_scenario
from repro.faults import (
    FaultInjector,
    FaultPlan,
    LinkDegradation,
    NodeArrival,
    NodeCrash,
    NodeRejoin,
    ParentLoss,
)

#: Victim of the canonical test plan (a non-root node of the Fig. 8
#: topology, whose roots sit at ids 0 and 7).
VICTIM = 3

PLAN = FaultPlan(
    crashes=(NodeCrash(time_s=10.0, node_id=VICTIM, detect_after_s=1.5),),
    rejoins=(NodeRejoin(time_s=16.0, node_id=VICTIM),),
    link_epochs=(LinkDegradation(time_s=12.0, prr_scale=0.6, duration_s=4.0),),
    parent_losses=(ParentLoss(time_s=18.0, node_id=1),),
)


def build_network(plan, scheduler=MINIMAL, seed=1):
    scenario = traffic_load_scenario(
        rate_ppm=60.0,
        scheduler=scheduler,
        seed=seed,
        measurement_s=14.0,
        warmup_s=8.0,
    )
    scenario = replace(scenario, faults=plan)
    return scenario.build_network(), scenario


def run_to(network, seconds: float) -> None:
    """Advance the simulation to (at least) ``seconds``."""
    target = network.clock.seconds_to_slots(seconds)
    if target > network.clock.asn:
        network.run_slots(target - network.clock.asn)


class TestArmValidation:
    def test_root_crash_rejected(self):
        plan = FaultPlan(crashes=(NodeCrash(time_s=5.0, node_id=0),))
        with pytest.raises(ValueError, match="root"):
            build_network(plan)

    def test_unknown_node_rejected(self):
        plan = FaultPlan(crashes=(NodeCrash(time_s=5.0, node_id=999),))
        with pytest.raises(ValueError, match="unknown node"):
            build_network(plan)

    def test_rejoin_requires_scheduler_factory(self):
        network, _scenario = build_network(None)
        plan = FaultPlan(
            crashes=(NodeCrash(time_s=5.0, node_id=VICTIM),),
            rejoins=(NodeRejoin(time_s=9.0, node_id=VICTIM),),
        )
        injector = FaultInjector(network, plan)
        with pytest.raises(ValueError, match="scheduler_factory"):
            injector.arm()

    def test_arm_is_idempotent(self):
        network, _scenario = build_network(PLAN)
        injector = network.fault_injector
        before = len(network.events._heap)
        injector.arm()  # second call: no duplicate events
        assert len(network.events._heap) == before

    def test_empty_plan_not_armed_by_scenario(self):
        network, _scenario = build_network(FaultPlan())
        assert not hasattr(network, "fault_injector")


class TestCrash:
    def test_crash_silences_the_node(self):
        network, _scenario = build_network(PLAN)
        run_to(network, 11.0)
        node = network.nodes[VICTIM]
        assert node.alive is False
        assert node.traffic_enabled is False
        assert node.traffic.enabled is False
        assert len(node.tsch.queue) == 0
        assert node.tsch.all_cells() == []
        assert node.rpl.preferred_parent is None
        assert node.rpl.dodag_id is None

    def test_dead_node_refuses_packets(self):
        from repro.net.packet import make_data_packet

        network, _scenario = build_network(PLAN)
        run_to(network, 11.0)
        node = network.nodes[VICTIM]
        packet = make_data_packet(VICTIM, 0, created_at=11.0)
        assert node.enqueue_packet(packet) is False
        assert node.generate_data() is None

    def test_detection_evicts_the_dead_neighbor_everywhere(self):
        network, _scenario = build_network(PLAN)
        run_to(network, 13.0)  # past crash (10.0) + detect_after (1.5)
        for node in network.nodes.values():
            if node.node_id == VICTIM:
                continue
            assert VICTIM not in node.rpl.neighbors
            assert VICTIM not in node.rpl.children
            for frame in node.tsch.slotframes.values():
                assert frame.cells_with_neighbor(VICTIM) == []


class TestRejoin:
    def test_rejoin_restores_a_working_node(self):
        network, _scenario = build_network(PLAN)
        run_to(network, 11.0)
        crashed_scheduler = network.nodes[VICTIM].scheduler
        run_to(network, 17.0)
        node = network.nodes[VICTIM]
        assert node.alive is True
        assert node.traffic_enabled is True
        assert node.scheduler is not crashed_scheduler  # cold reboot
        # Warm re-attach: the pre-crash parent survived, so the node is
        # joined again without waiting for a Trickle-timed DIO.
        assert node.rpl.preferred_parent is not None
        assert node.rpl.dodag_id is not None

    def test_rejoin_is_noop_for_alive_node(self):
        network, _scenario = build_network(PLAN)
        run_to(network, 9.0)
        node = network.nodes[VICTIM]
        scheduler = node.scheduler
        network.fault_injector._rejoin(NodeRejoin(time_s=9.0, node_id=VICTIM))
        assert node.scheduler is scheduler


class TestLinkDegradation:
    def test_epoch_scales_then_restores_exactly(self):
        network, _scenario = build_network(PLAN)
        run_to(network, 13.0)  # inside the [12, 16) epoch
        assert network.medium.prr_scale == 0.6
        with pytest.raises(RuntimeError, match="link-degradation"):
            network.medium.export_frozen()
        run_to(network, 17.0)  # epoch closed
        assert network.medium.prr_scale == 1.0
        network.medium.export_frozen()  # snapshots allowed again

    def test_overlapping_epochs_multiply(self):
        plan = FaultPlan(
            link_epochs=(
                LinkDegradation(time_s=9.0, prr_scale=0.5, duration_s=4.0),
                LinkDegradation(time_s=10.0, prr_scale=0.5, duration_s=1.0),
            )
        )
        network, _scenario = build_network(plan)
        run_to(network, 10.5)
        assert network.medium.prr_scale == 0.25
        run_to(network, 12.0)
        assert network.medium.prr_scale == 0.5
        run_to(network, 14.0)
        assert network.medium.prr_scale == 1.0


class TestParentLoss:
    def test_parent_loss_evicts_and_reselects(self):
        network, _scenario = build_network(PLAN)
        run_to(network, 17.9)
        node = network.nodes[1]
        old_parent = node.rpl.preferred_parent
        assert old_parent is not None
        run_to(network, 18.5)
        assert old_parent not in node.rpl.neighbors
        # MRHOF re-ran immediately; with other candidates advertised the
        # node re-attaches (possibly to a different parent).
        assert node.rpl.preferred_parent != old_parent or old_parent is None


class TestArrival:
    ARRIVER = 3

    def _plan(self, time_s=12.0):
        return FaultPlan(arrivals=(NodeArrival(time_s=time_s, node_id=self.ARRIVER),))

    def test_root_arrival_rejected(self):
        plan = FaultPlan(arrivals=(NodeArrival(time_s=5.0, node_id=0),))
        with pytest.raises(ValueError, match="root"):
            build_network(plan)

    def test_unknown_arriver_rejected(self):
        plan = FaultPlan(arrivals=(NodeArrival(time_s=5.0, node_id=999),))
        with pytest.raises(ValueError, match="unknown node"):
            build_network(plan)

    def test_arrival_requires_scheduler_factory(self):
        network, _scenario = build_network(None)
        injector = FaultInjector(network, self._plan())
        with pytest.raises(ValueError, match="scheduler_factory"):
            injector.arm()

    def test_arrivals_must_be_armed_before_start(self):
        network, _scenario = build_network(None)
        network.start()
        injector = FaultInjector(
            network,
            self._plan(),
            scheduler_factory=lambda node_id, is_root: None,
        )
        with pytest.raises(ValueError, match="before the network starts"):
            injector.arm()

    def test_arriver_is_absent_until_its_time(self):
        network, _scenario = build_network(self._plan())
        node = network.nodes[self.ARRIVER]
        # Pre-marked at arm time, before slot 0.
        assert node.alive is False
        assert node.traffic_enabled is False
        run_to(network, 11.0)
        assert node.alive is False
        assert node.rpl.preferred_parent is None
        assert len(node.tsch.queue) == 0
        assert node.tsch.all_cells() == []
        # Nobody in the network ever saw it.
        for other in network.nodes.values():
            if other.node_id == self.ARRIVER:
                continue
            assert self.ARRIVER not in other.rpl.neighbors
            assert self.ARRIVER not in other.rpl.children

    def test_arrival_boots_a_working_node(self):
        network, _scenario = build_network(self._plan())
        run_to(network, 13.0)
        node = network.nodes[self.ARRIVER]
        assert node.alive is True
        assert node.traffic_enabled is True
        run_to(network, 22.0)
        # A DIO adopted the newcomer into the DODAG.
        assert node.rpl.preferred_parent is not None
        assert node.rpl.dodag_id is not None

    def test_arrival_is_noop_for_alive_node(self):
        network, _scenario = build_network(self._plan())
        run_to(network, 13.0)
        node = network.nodes[self.ARRIVER]
        scheduler = node.scheduler
        network.fault_injector._arrival(NodeArrival(time_s=13.0, node_id=self.ARRIVER))
        assert node.scheduler is scheduler

    def test_arrival_counts_as_injected_fault(self):
        network, scenario = build_network(self._plan())
        metrics = network.run_experiment(
            warmup_s=scenario.warmup_s,
            measurement_s=scenario.measurement_s,
            drain_s=3.0,
            scheduler_name=scenario.scheduler,
        )
        assert metrics.faults_injected == 1
        assert metrics.nodes_joined == 1
        assert metrics.time_to_join_s > 0.0


class TestRejoinInsideOpenEpoch:
    """Censoring edge case: a cold reboot lands inside a degradation epoch.

    The rejoining node opens a join episode while every link is degraded;
    it may or may not close before the window does.  Either way the run
    must finalize cleanly -- open episodes censor at the window close --
    and the epoch's restore barrier must still fire on schedule.
    """

    def _plan(self):
        return FaultPlan(
            crashes=(NodeCrash(time_s=10.0, node_id=VICTIM, detect_after_s=1.5),),
            # Rejoin at 14.0, strictly inside the [12, 18) epoch.
            rejoins=(NodeRejoin(time_s=14.0, node_id=VICTIM),),
            link_epochs=(
                LinkDegradation(time_s=12.0, prr_scale=0.4, duration_s=6.0),
            ),
        )

    def test_cold_rejoin_during_epoch_finalizes_and_restores(self):
        scenario = replace(
            traffic_load_scenario(
                rate_ppm=60.0,
                scheduler=MINIMAL,
                seed=1,
                measurement_s=14.0,
                warmup_s=8.0,
            ),
            faults=self._plan(),
        )
        # Cold-start join: the reboot re-enters the EB scan mid-epoch.
        contiki = replace(scenario.contiki, cold_start_join=True)
        scenario = replace(scenario, contiki=contiki, warm_start=False)
        network = scenario.build_network()
        metrics = network.run_experiment(
            warmup_s=scenario.warmup_s,
            measurement_s=scenario.measurement_s,
            drain_s=3.0,
            scheduler_name=scenario.scheduler,
        )
        assert metrics.faults_injected == 3
        assert network.medium.prr_scale == 1.0  # restore fired on schedule
        # Every boot opened a join episode; closed or censored, the export
        # is finite and the rebooted node's episode was not dropped.
        assert metrics.time_to_join_s > 0.0
        assert metrics.time_to_first_packet_s >= 0.0
        assert 0 <= metrics.nodes_joined <= len(network.nodes)
        data = metrics.as_dict()
        assert data["time_to_join_s"] == metrics.time_to_join_s

    def test_warm_rejoin_during_epoch_finalizes_and_restores(self):
        network, scenario = build_network(self._plan())
        metrics = network.run_experiment(
            warmup_s=scenario.warmup_s,
            measurement_s=scenario.measurement_s,
            drain_s=3.0,
            scheduler_name=scenario.scheduler,
        )
        assert metrics.faults_injected == 3
        assert network.medium.prr_scale == 1.0
        assert network.nodes[VICTIM].alive


class TestRecoveryMetrics:
    def test_full_plan_reports_recovery_metrics(self):
        network, scenario = build_network(PLAN)
        metrics = network.run_experiment(
            warmup_s=scenario.warmup_s,
            measurement_s=scenario.measurement_s,
            drain_s=3.0,
            scheduler_name=scenario.scheduler,
        )
        assert metrics.faults_injected == 4
        assert metrics.time_to_reconverge_s > 0.0
        assert metrics.packets_lost_to_crash >= 0
        assert 0.0 <= metrics.pdr_under_churn_percent <= 100.0
        data = metrics.as_dict()
        for key in (
            "time_to_reconverge_s",
            "pdr_under_churn_percent",
            "packets_lost_to_crash",
            "orphaned_cell_slots",
        ):
            assert key in data
