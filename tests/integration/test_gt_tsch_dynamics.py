"""Dynamic-behaviour integration tests for GT-TSCH.

These cover the adaptive aspects of the scheduler that the steady-state
figure benchmarks do not isolate: growing the schedule when the load rises,
shrinking it when the load falls, and keeping the control plane responsive
while doing so.
"""


from repro.net.topology import star_topology
from repro.net.traffic import PeriodicTrafficGenerator

from tests.conftest import make_gt_network


class TestAdaptationToLoad:
    def test_allocation_grows_when_rate_increases(self):
        """Raising the application rate triggers new 6P ADDs (Section VI)."""
        network = make_gt_network(star_topology(2), rate_ppm=30, seed=31)
        network.run_seconds(30.0)
        leaf = network.nodes[1]
        cells_at_low_rate = leaf.scheduler.tx_data_cell_count()
        # Quadruple the application rate at run time.
        leaf.traffic.stop()
        boosted = PeriodicTrafficGenerator(rate_ppm=240)
        leaf.set_traffic_generator(boosted)
        boosted.start()
        network.run_seconds(30.0)
        assert leaf.scheduler.tx_data_cell_count() > cells_at_low_rate

    def test_allocation_shrinks_after_load_drops(self):
        """Over-provisioned cells are released with 6P DELETE (energy saving)."""
        network = make_gt_network(star_topology(2), rate_ppm=240, seed=32)
        network.run_seconds(30.0)
        leaf = network.nodes[1]
        peak = leaf.scheduler.tx_data_cell_count()
        assert peak >= 2
        leaf.traffic.stop()
        leaf.traffic_enabled = False
        network.run_seconds(40.0)
        assert leaf.scheduler.tx_data_cell_count() < peak
        assert leaf.scheduler.delete_requests_sent >= 1

    def test_queue_metric_tracks_congestion(self):
        network = make_gt_network(star_topology(2), rate_ppm=240, seed=33)
        network.run_seconds(10.0)
        leaf = network.nodes[1]
        # Artificially stuff the queue and let the next load-balance tick see it.
        for _ in range(6):
            leaf.generate_data()
        network.run_seconds(6.0)
        assert leaf.scheduler.queue_metric.updates > 0

    def test_control_overhead_is_bounded(self):
        """6P/RPL/EB control traffic stays a small fraction of data traffic."""
        network = make_gt_network(star_topology(3), rate_ppm=120, seed=34)
        metrics = network.run_experiment(warmup_s=20.0, measurement_s=30.0, drain_s=3.0)
        assert metrics.control_packets_sent < metrics.delivered

    def test_game_respects_parent_advertised_budget(self):
        """The request size never exceeds what the parent advertised (l_rx)."""
        network = make_gt_network(star_topology(3), rate_ppm=165, seed=35)
        network.run_seconds(40.0)
        for node_id in (1, 2, 3):
            node = network.nodes[node_id]
            advertised = node.rpl.parent_l_rx()
            if advertised > 0:
                assert node.scheduler.last_game_request <= max(
                    advertised, node.scheduler.tx_data_cell_count()
                )
