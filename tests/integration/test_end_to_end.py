"""End-to-end integration tests: the paper's qualitative claims on small networks.

These tests run full simulations (all layers, both schedulers) on reduced
topologies and shortened time windows so they stay fast, and assert the
*relationships* the paper reports rather than absolute numbers.
"""

from repro.core.config import GtTschConfig
from repro.mac.cell import CellPurpose
from repro.net.topology import line_topology, multi_dodag_topology, star_topology

from tests.conftest import make_gt_network, make_orchestra_network


def run_small(network, measurement_s=25.0, warmup_s=20.0):
    return network.run_experiment(warmup_s=warmup_s, measurement_s=measurement_s, drain_s=3.0)


class TestGtTschDeliversUnderLoad:
    def test_single_dodag_high_load(self):
        network = make_gt_network(star_topology(3), rate_ppm=165, seed=3)
        metrics = run_small(network)
        assert metrics.pdr_percent > 90.0
        assert metrics.queue_loss_per_node < 5.0

    def test_multihop_chain(self):
        network = make_gt_network(line_topology(4, spacing=25.0), rate_ppm=60, seed=4)
        metrics = run_small(network, measurement_s=30.0, warmup_s=30.0)
        assert metrics.pdr_percent > 85.0
        assert metrics.avg_hops > 1.5  # traffic really crosses multiple hops

    def test_paper_topology_small_window(self):
        network = make_gt_network(
            multi_dodag_topology(num_dodags=2, nodes_per_dodag=5), rate_ppm=120, seed=5
        )
        metrics = run_small(network, measurement_s=30.0, warmup_s=30.0)
        assert metrics.pdr_percent > 90.0

    def test_delay_bounded_at_light_load(self):
        network = make_gt_network(star_topology(3), rate_ppm=30, seed=6)
        metrics = run_small(network)
        assert metrics.end_to_end_delay_ms < 1000.0


class TestPaperComparisons:
    def test_gt_tsch_beats_orchestra_under_heavy_load(self):
        """The headline claim of Figs. 8a/8f at high rates."""
        gt = run_small(make_gt_network(star_topology(3), rate_ppm=165, seed=7))
        orchestra = run_small(make_orchestra_network(star_topology(3), rate_ppm=165, seed=7))
        assert gt.pdr_percent > orchestra.pdr_percent
        assert gt.received_per_minute > orchestra.received_per_minute

    def test_both_schedulers_fine_at_light_load(self):
        """Fig. 8a at 30 ppm: both deliver essentially everything."""
        gt = run_small(make_gt_network(star_topology(3), rate_ppm=20, seed=8))
        orchestra = run_small(make_orchestra_network(star_topology(3), rate_ppm=20, seed=8))
        assert gt.pdr_percent > 90.0
        assert orchestra.pdr_percent > 90.0

    def test_gt_tsch_lower_delay_under_load(self):
        gt = run_small(make_gt_network(star_topology(3), rate_ppm=120, seed=9))
        orchestra = run_small(make_orchestra_network(star_topology(3), rate_ppm=120, seed=9))
        assert gt.end_to_end_delay_ms < orchestra.end_to_end_delay_ms

    def test_gt_tsch_queue_loss_lower_under_load(self):
        gt = run_small(make_gt_network(star_topology(3), rate_ppm=165, seed=10))
        orchestra = run_small(make_orchestra_network(star_topology(3), rate_ppm=165, seed=10))
        assert gt.queue_loss_per_node <= orchestra.queue_loss_per_node


class TestScheduleInvariants:
    def test_gt_tsch_interference_avoidance_invariants(self):
        """After convergence: channel uniqueness among siblings, Tx>Rx on
        forwarding nodes, negotiated cells conflict-free at each node."""
        network = make_gt_network(
            multi_dodag_topology(num_dodags=1, nodes_per_dodag=7), rate_ppm=120, seed=11
        )
        network.run_seconds(45.0)
        nodes = network.nodes

        # Sibling child-facing channels are unique per parent.
        for parent in nodes.values():
            children = sorted(parent.rpl.children)
            child_channels = [
                nodes[child].scheduler.own_child_channel
                for child in children
                if nodes[child].scheduler.own_child_channel is not None
            ]
            assert len(child_channels) == len(set(child_channels))

        for node in nodes.values():
            scheduler = node.scheduler
            # A node's child-facing channel differs from its parent-facing one.
            if scheduler.own_child_channel is not None and scheduler.parent_channel_offset is not None:
                assert scheduler.own_child_channel != scheduler.parent_channel_offset
            # Tx > Rx for every node that forwards traffic.
            if not node.is_root and scheduler.rx_data_cell_count() > 0:
                assert scheduler.tx_data_cell_count() > scheduler.rx_data_cell_count()
            # No two negotiated cells share a slot offset.
            negotiated = [
                cell.slot_offset
                for cell in node.tsch.all_cells()
                if cell.purpose in (CellPurpose.UNICAST_DATA, CellPurpose.UNICAST_6P)
            ]
            assert len(negotiated) == len(set(negotiated))

    def test_metrics_accounting_consistent(self):
        network = make_gt_network(star_topology(3), rate_ppm=120, seed=12)
        metrics = run_small(network)
        assert metrics.delivered + metrics.lost == metrics.generated
        # The sink counters include warm-up traffic, so they bound the
        # measured deliveries from above.
        sink_total = sum(node.stats.data_delivered_as_sink for node in network.roots())
        assert metrics.delivered <= sink_total

    def test_cold_start_network_forms_and_delivers(self):
        """Without warm-started RPL state the DODAG still forms via DIOs."""
        network = make_gt_network(star_topology(3), rate_ppm=30, seed=13, warm_start=False)
        metrics = run_small(network, measurement_s=30.0, warmup_s=40.0)
        for node_id in (1, 2, 3):
            assert network.nodes[node_id].rpl.preferred_parent == 0
        assert metrics.pdr_percent > 80.0

    def test_determinism_of_full_experiment(self):
        first = run_small(make_gt_network(star_topology(3), rate_ppm=120, seed=21))
        second = run_small(make_gt_network(star_topology(3), rate_ppm=120, seed=21))
        assert first.as_dict() == second.as_dict()


class TestFailureInjection:
    def test_degraded_links_raise_etx_and_still_deliver(self):
        from repro.phy.propagation import UnitDiskLossyEdgeModel
        from repro.net.network import Network
        from repro.net.node import NodeConfig
        from repro.core.scheduler import GtTschScheduler
        from repro.net.traffic import PeriodicTrafficGenerator

        # Put the leaf at the lossy edge of the radio range.
        network = Network(
            propagation=UnitDiskLossyEdgeModel(
                reliable_range=10.0, communication_range=45.0, interference_range=70.0,
                prr_max=0.97, prr_edge=0.6,
            ),
            seed=3,
            default_node_config=NodeConfig(),
        )
        topo = star_topology(2, radius=40.0)
        network.build_from_topology(
            topo,
            scheduler_factory=lambda nid, root: GtTschScheduler(GtTschConfig(load_balance_period_s=2.0)),
            traffic_factory=lambda nid, root: None if root else PeriodicTrafficGenerator(60),
        )
        metrics = network.run_experiment(warmup_s=20.0, measurement_s=30.0, drain_s=5.0)
        leaf = network.nodes[1]
        assert leaf.tsch.etx.etx(0) > 1.2  # the estimator noticed the lossy link
        assert metrics.pdr_percent > 60.0  # retransmissions still deliver most packets

    def test_parent_loss_recovers_through_rpl(self):
        """If the preferred parent's link disappears, the node re-parents."""
        network = make_gt_network(
            multi_dodag_topology(num_dodags=1, nodes_per_dodag=4), rate_ppm=30, seed=14
        )
        network.run_seconds(20.0)
        # Move node 3 (child of 1) right next to node 2 and out of node 1's range.
        node3 = network.nodes[3]
        new_position = (network.nodes[2].position[0] + 5.0, network.nodes[2].position[1])
        node3.position = new_position
        network.medium.register_node(3, new_position)
        network.run_seconds(60.0)
        assert node3.rpl.preferred_parent in (0, 2)
