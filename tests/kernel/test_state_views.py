"""View-coherence tests for the struct-of-arrays node-state store.

The store's contract (``docs/soa.md``) is coherence *by construction*: the
object classes hold no copies of the hot state -- their attributes are
properties over the store columns -- so any mutation through the object views
(``warm_start``, ``evict_neighbor``, the fault injector's crash/rejoin
barriers) must be immediately visible in the arrays, and any bulk array write
must be immediately visible through the objects.  These tests pin that
contract on live networks, including after ``adopt_frozen`` in a warm-pool
worker, plus the standalone-object path (``LocalBacking`` -> ``bind``).
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.scenarios import (
    MINIMAL,
    traffic_load_scenario,
)
from repro.faults import FaultPlan, LinkDegradation, NodeCrash, NodeRejoin, ParentLoss
from repro.kernel.state import PTYPE_INDEX, LocalBacking, NodeStateStore
from repro.mac.duty_cycle import DutyCycleMeter
from repro.net.packet import PacketType, make_data_packet
from repro.rpl.rank import INFINITE_RANK

VICTIM = 3

PLAN = FaultPlan(
    crashes=(NodeCrash(time_s=10.0, node_id=VICTIM, detect_after_s=1.5),),
    rejoins=(NodeRejoin(time_s=16.0, node_id=VICTIM),),
    link_epochs=(LinkDegradation(time_s=12.0, prr_scale=0.6, duration_s=4.0),),
    parent_losses=(ParentLoss(time_s=18.0, node_id=1),),
)


def build_network(plan=None, scheduler=MINIMAL, seed=1, warm_start=True):
    scenario = traffic_load_scenario(
        rate_ppm=60.0,
        scheduler=scheduler,
        seed=seed,
        measurement_s=14.0,
        warmup_s=8.0,
    )
    scenario = replace(scenario, faults=plan, warm_start=warm_start)
    return scenario.build_network(), scenario


def run_to(network, seconds: float) -> None:
    target = network.clock.seconds_to_slots(seconds)
    if target > network.clock.asn:
        network.run_slots(target - network.clock.asn)


def assert_coherent(network) -> None:
    """Every observable view equals its backing column, for every node."""
    store = network.state
    for node in network.nodes.values():
        row = node._row
        engine = node.tsch
        meter = engine.duty_cycle
        assert node._backing is store
        assert bool(store.alive[row]) == node.alive
        assert int(store.adv_rank[row]) == node.rpl.rank
        assert int(store.joined[row]) == (
            1 if (node.rpl.is_root or node.rpl.preferred_parent is not None) else 0
        )
        assert int(store.queue_len[row]) == len(engine.queue)
        assert int(store.duty_accounted_asn[row]) == engine.duty_accounted_asn
        assert int(store.tx_slots[row]) == meter.tx_slots
        assert int(store.rx_slots[row]) == meter.rx_slots
        assert int(store.idle_listen_slots[row]) == meter.idle_listen_slots
        assert int(store.sleep_slots[row]) == meter.sleep_slots
        assert int(store.total_slots[row]) == meter.total_slots
        assert int(store.etx_version[row]) == engine.etx.version
        counts = store.ptype_counts[row]
        for ptype, index in PTYPE_INDEX.items():
            expected = sum(1 for p in engine.queue._queue if p.ptype is ptype)
            assert int(counts[index]) == expected


class TestStandaloneViews:
    """Objects built outside a network run on a private LocalBacking."""

    def test_meter_starts_on_local_backing(self):
        meter = DutyCycleMeter()
        assert isinstance(meter._backing, LocalBacking)
        meter.record_tx()
        meter.record_rx(True)
        assert meter.tx_slots == 1
        assert meter.rx_slots == 1

    def test_bind_preserves_values_and_retargets(self):
        meter = DutyCycleMeter()
        meter.record_tx()
        meter.record_sleep()
        store = NodeStateStore()
        row = store.add_row()
        meter.bind(store, row)
        assert meter._backing is store and meter._row == row
        assert meter.tx_slots == 1
        assert meter.sleep_slots == 1
        # Two-way visibility after the move.
        meter.record_tx()
        assert int(store.tx_slots[row]) == 2
        store.tx_slots[row] = 7
        assert meter.tx_slots == 7

    def test_store_growth_preserves_rows(self):
        store = NodeStateStore()
        rows = [store.add_row() for _ in range(3)]
        store.tx_horizon[rows[1]] = 42
        store.adv_rank[rows[2]] = 256.0
        version = store.layout_version
        initial_capacity = store._capacity
        for _ in range(initial_capacity + 1):
            store.add_row()
        assert store._capacity > initial_capacity
        assert store.layout_version > version
        assert int(store.tx_horizon[rows[1]]) == 42
        assert int(store.tx_horizon[rows[0]]) == -1
        assert float(store.adv_rank[rows[2]]) == 256.0


class TestLiveNetworkCoherence:
    def test_warm_start_visible_in_arrays(self):
        network, _ = build_network(warm_start=True)
        network.start()
        store = network.state
        for node in network.nodes.values():
            # warm_start presets rank/parent before the first slot runs.
            assert int(store.adv_rank[node._row]) == node.rpl.rank
            if node.rpl.is_root or node.rpl.preferred_parent is not None:
                assert int(store.joined[node._row]) == 1
        assert_coherent(network)

    def test_queue_mutations_mirrored(self):
        network, _ = build_network()
        network.start()
        node = network.nodes[1]
        store = network.state
        row = node._row
        packet = make_data_packet(1, 0, created_at=0.0)
        packet.link_destination = 0
        node.tsch.enqueue(packet)
        assert int(store.queue_len[row]) == len(node.tsch.queue)
        assert int(store.ptype_counts[row][PTYPE_INDEX[PacketType.DATA]]) >= 1
        node.tsch._dequeue(packet)
        assert int(store.queue_len[row]) == len(node.tsch.queue)

    def test_evict_neighbor_rank_change_mirrored(self):
        network, _ = build_network()
        network.start()
        run_to(network, 4.0)
        node = network.nodes[VICTIM]
        parent = node.rpl.preferred_parent
        assert parent is not None
        node.rpl.evict_neighbor(parent)
        store = network.state
        assert int(store.adv_rank[node._row]) == node.rpl.rank
        assert int(store.joined[node._row]) == (
            1 if node.rpl.preferred_parent is not None else 0
        )
        assert_coherent(network)

    def test_mid_run_and_final_coherence(self):
        network, scenario = build_network()
        run_to(network, scenario.warmup_s)
        assert_coherent(network)
        run_to(network, scenario.warmup_s + scenario.measurement_s)
        assert_coherent(network)


class TestFaultBarrierCoherence:
    def test_crash_clears_the_row(self):
        network, _ = build_network(plan=PLAN)
        run_to(network, 11.0)  # past the crash, before the rejoin
        store = network.state
        node = network.nodes[VICTIM]
        row = node._row
        assert not node.alive
        assert int(store.alive[row]) == 0
        assert int(store.joined[row]) == 0
        assert int(store.adv_rank[row]) == INFINITE_RANK
        assert int(store.queue_len[row]) == 0
        # Dead radios advertise no timer phases and no TX horizon.
        assert float(store.eb_phase[row]) == -1.0
        assert float(store.trickle_phase[row]) == -1.0
        assert float(store.traffic_phase[row]) == -1.0
        assert int(store.tx_horizon[row]) == -1
        assert store.alive_rows() == [
            n._row for n in network.nodes.values() if n.node_id != VICTIM
        ]
        assert_coherent(network)

    def test_rejoin_restores_the_row(self):
        network, scenario = build_network(plan=PLAN)
        run_to(network, 17.0)  # past the rejoin
        store = network.state
        node = network.nodes[VICTIM]
        row = node._row
        assert node.alive
        assert int(store.alive[row]) == 1
        assert int(store.adv_rank[row]) == node.rpl.rank
        # The reboot re-armed the advertisement timers.
        assert float(store.eb_phase[row]) > network.events.now
        assert float(store.trickle_phase[row]) > network.events.now
        run_to(network, scenario.warmup_s + scenario.measurement_s)
        assert_coherent(network)


class TestAdoptFrozenCoherence:
    def test_warm_pool_adoption_keeps_views_coherent(self):
        """A warm-pool worker adopts a frozen-medium snapshot from a previous
        run of the same topology; the store and views must stay coherent."""
        donor, scenario = build_network()
        donor.start()
        snapshot = donor.medium.export_frozen()
        network, _ = build_network()
        assert network.medium.adopt_frozen(snapshot)
        run_to(network, scenario.warmup_s)
        assert_coherent(network)
        # Identical topology + seed: the adopted run equals the donor's.
        run_to(donor, scenario.warmup_s)
        for node_id in donor.nodes:
            assert (
                donor.state.tx_slots[donor.nodes[node_id]._row]
                == network.state.tx_slots[network.nodes[node_id]._row]
            )
