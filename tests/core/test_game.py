"""Tests for the GT-TSCH game model (Eqs. (2)-(15) of the paper)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.game import (
    GameWeights,
    PlayerState,
    ewma_queue_metric,
    link_cost,
    optimal_tx_cells,
    payoff,
    payoff_derivative,
    payoff_second_derivative,
    queue_cost,
    unconstrained_optimum,
    utility,
)


def state(l_min=0.0, l_rx=10.0, rank=0.5, etx=1.5, q=2.0, q_max=8.0):
    return PlayerState(
        l_tx_min=l_min,
        l_rx_parent=l_rx,
        rank_normalised=rank,
        etx=etx,
        queue_metric=q,
        q_max=q_max,
    )


#: Hypothesis strategy over valid player states with a non-empty strategy set.
states = st.builds(
    state,
    l_min=st.floats(min_value=0.0, max_value=10.0),
    l_rx=st.floats(min_value=10.0, max_value=30.0),
    rank=st.floats(min_value=0.01, max_value=1.0),
    etx=st.floats(min_value=1.0, max_value=8.0),
    q=st.floats(min_value=0.0, max_value=8.0),
    q_max=st.just(8.0),
)

weight_sets = st.builds(
    GameWeights,
    alpha=st.floats(min_value=0.5, max_value=32.0),
    beta=st.floats(min_value=0.0, max_value=8.0),
    gamma=st.floats(min_value=0.0, max_value=8.0),
)


class TestUtility:
    def test_eq2_logarithmic_form(self):
        assert utility(0, 1.0) == 0.0
        assert utility(math.e - 1, 1.0) == pytest.approx(1.0)
        assert utility(3, 0.5) == pytest.approx(0.5 * math.log(4))

    def test_increasing_in_cells(self):
        assert utility(5, 1.0) > utility(4, 1.0)

    def test_strictly_concave(self):
        """Marginal utility decreases: u(2)-u(1) > u(3)-u(2)."""
        assert utility(2, 1.0) - utility(1, 1.0) > utility(3, 1.0) - utility(2, 1.0)

    def test_nodes_closer_to_root_gain_more(self):
        assert utility(4, 1.0) > utility(4, 0.25)

    def test_negative_cells_rejected(self):
        with pytest.raises(ValueError):
            utility(-1, 1.0)


class TestCosts:
    def test_eq5_link_cost(self):
        assert link_cost(4, 1.0) == 0.0
        assert link_cost(4, 2.0) == pytest.approx(4.0)
        assert link_cost(4, 3.5) == pytest.approx(10.0)

    def test_link_cost_rejects_invalid(self):
        with pytest.raises(ValueError):
            link_cost(-1, 2.0)
        with pytest.raises(ValueError):
            link_cost(1, 0.5)

    def test_eq7_queue_cost(self):
        assert queue_cost(4, 8, 8) == 0.0
        assert queue_cost(4, 0, 8) == pytest.approx(4.0)
        assert queue_cost(4, 4, 8) == pytest.approx(2.0)

    def test_queue_cost_clamps_overfull_queue(self):
        assert queue_cost(4, 20, 8) == 0.0

    def test_full_queue_makes_cells_free(self):
        """A congested node pays no queue cost -- the paper's prioritisation."""
        assert queue_cost(10, 8, 8) < queue_cost(10, 1, 8)

    def test_queue_cost_rejects_invalid(self):
        with pytest.raises(ValueError):
            queue_cost(1, 1, 0)
        with pytest.raises(ValueError):
            queue_cost(-1, 1, 8)


class TestPayoff:
    def test_eq8_composition(self):
        s = state()
        w = GameWeights(alpha=2.0, beta=3.0, gamma=4.0)
        expected = (
            2.0 * utility(5, s.rank_normalised)
            - 3.0 * link_cost(5, s.etx)
            - 4.0 * queue_cost(5, s.queue_metric, s.q_max)
        )
        assert payoff(5, s, w) == pytest.approx(expected)

    def test_payoff_at_zero_cells_is_zero(self):
        assert payoff(0, state()) == 0.0

    @given(states, weight_sets, st.floats(min_value=0.0, max_value=30.0))
    def test_second_derivative_always_negative(self, s, w, l):
        """Theorem 1 / Eq. (10): the payoff is strictly concave in l."""
        assert payoff_second_derivative(l, s, w) < 0.0

    @given(states, weight_sets)
    def test_derivative_consistent_with_finite_differences(self, s, w):
        l = 3.0
        h = 1e-5
        numeric = (payoff(l + h, s, w) - payoff(l - h, s, w)) / (2 * h)
        assert payoff_derivative(l, s, w) == pytest.approx(numeric, rel=1e-3, abs=1e-4)


class TestOptimalTxCells:
    def test_eq15_interior_solution(self):
        """When the stationary point lies inside the strategy set, it is chosen."""
        s = state(l_min=0.0, l_rx=50.0, rank=1.0, etx=1.0, q=4.0, q_max=8.0)
        w = GameWeights(alpha=8.0, beta=1.0, gamma=4.0)
        expected = 8.0 * 1.0 / (4.0 * 0.5) - 1.0  # = 3
        assert optimal_tx_cells(s, w, integral=False) == pytest.approx(expected)

    def test_eq15_lower_constraint_active(self):
        s = state(l_min=6.0, l_rx=20.0, rank=0.1, etx=3.0, q=0.0)
        w = GameWeights(alpha=1.0, beta=1.0, gamma=1.0)
        assert optimal_tx_cells(s, w, integral=False) == pytest.approx(6.0)

    def test_eq15_upper_constraint_active(self):
        s = state(l_min=0.0, l_rx=2.0, rank=1.0, etx=1.0, q=8.0, q_max=8.0)
        w = GameWeights(alpha=8.0, beta=1.0, gamma=4.0)
        assert optimal_tx_cells(s, w, integral=False) == pytest.approx(2.0)

    def test_parent_offering_less_than_minimum_caps_request(self):
        """Section VII: l_tx = l_rx_p when l_rx_p <= l_tx_min."""
        s = state(l_min=5.0, l_rx=3.0)
        assert optimal_tx_cells(s, integral=False) == pytest.approx(3.0)

    def test_perfect_link_and_full_queue_requests_parent_maximum(self):
        s = state(l_min=1.0, l_rx=12.0, etx=1.0, q=8.0, q_max=8.0)
        assert optimal_tx_cells(s, integral=False) == pytest.approx(12.0)
        assert math.isinf(unconstrained_optimum(s))

    def test_integral_result_is_floor(self):
        s = state(l_min=0.0, l_rx=50.0, rank=1.0, etx=1.0, q=4.0, q_max=8.0)
        w = GameWeights(alpha=9.0, beta=1.0, gamma=4.0)
        continuous = optimal_tx_cells(s, w, integral=False)
        integral = optimal_tx_cells(s, w, integral=True)
        assert integral == math.floor(continuous + 1e-9)

    def test_result_never_negative(self):
        s = state(l_min=0.0, l_rx=0.0, rank=0.01, etx=8.0, q=0.0)
        assert optimal_tx_cells(s) == 0.0

    @given(states, weight_sets)
    def test_result_within_strategy_set(self, s, w):
        """The request always lies in [l_tx_min, l_rx_parent] (Eq. (13))."""
        result = optimal_tx_cells(s, w, integral=False)
        assert s.l_tx_min - 1e-9 <= result <= s.l_rx_parent + 1e-9

    @given(states, weight_sets)
    def test_result_maximises_payoff_over_strategy_set(self, s, w):
        """No sampled strategy beats Eq. (15)'s choice (KKT optimality)."""
        best = optimal_tx_cells(s, w, integral=False)
        best_payoff = payoff(best, s, w)
        span = s.l_rx_parent - s.l_tx_min
        for index in range(33):
            candidate = s.l_tx_min + span * index / 32
            assert payoff(candidate, s, w) <= best_payoff + 1e-6

    @given(states, weight_sets)
    def test_worse_links_never_increase_the_request(self, s, w):
        degraded = PlayerState(
            l_tx_min=s.l_tx_min,
            l_rx_parent=s.l_rx_parent,
            rank_normalised=s.rank_normalised,
            etx=min(s.etx + 2.0, 16.0),
            queue_metric=s.queue_metric,
            q_max=s.q_max,
        )
        assert optimal_tx_cells(degraded, w, integral=False) <= optimal_tx_cells(
            s, w, integral=False
        ) + 1e-9

    @given(states, weight_sets)
    def test_fuller_queues_never_decrease_the_request(self, s, w):
        congested = PlayerState(
            l_tx_min=s.l_tx_min,
            l_rx_parent=s.l_rx_parent,
            rank_normalised=s.rank_normalised,
            etx=s.etx,
            queue_metric=min(s.queue_metric + 3.0, s.q_max),
            q_max=s.q_max,
        )
        assert optimal_tx_cells(congested, w, integral=False) >= optimal_tx_cells(
            s, w, integral=False
        ) - 1e-9

    @given(states, weight_sets)
    def test_nodes_closer_to_root_request_at_least_as_much(self, s, w):
        closer = PlayerState(
            l_tx_min=s.l_tx_min,
            l_rx_parent=s.l_rx_parent,
            rank_normalised=min(s.rank_normalised * 2.0, 256.0),
            etx=s.etx,
            queue_metric=s.queue_metric,
            q_max=s.q_max,
        )
        assert optimal_tx_cells(closer, w, integral=False) >= optimal_tx_cells(
            s, w, integral=False
        ) - 1e-9


class TestPlayerStateValidation:
    def test_invalid_states_rejected(self):
        with pytest.raises(ValueError):
            state(q_max=0)
        with pytest.raises(ValueError):
            state(etx=0.5)
        with pytest.raises(ValueError):
            state(q=-1)
        with pytest.raises(ValueError):
            state(l_min=-1)

    def test_weights_validation(self):
        with pytest.raises(ValueError):
            GameWeights(alpha=0.0)
        with pytest.raises(ValueError):
            GameWeights(beta=-1.0)


class TestEwmaQueueMetric:
    def test_eq6_formula(self):
        assert ewma_queue_metric(4.0, 8.0, 0.5) == pytest.approx(6.0)
        assert ewma_queue_metric(4.0, 8.0, 1.0) == pytest.approx(4.0)
        assert ewma_queue_metric(4.0, 8.0, 0.0) == pytest.approx(8.0)

    def test_converges_to_constant_input(self):
        value = 0.0
        for _ in range(100):
            value = ewma_queue_metric(value, 5.0, 0.7)
        assert value == pytest.approx(5.0, abs=1e-6)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ewma_queue_metric(1.0, 1.0, 1.5)
        with pytest.raises(ValueError):
            ewma_queue_metric(-1.0, 1.0, 0.5)

    @given(
        st.floats(min_value=0.0, max_value=8.0),
        st.floats(min_value=0.0, max_value=8.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_result_between_previous_and_current(self, previous, current, zeta):
        result = ewma_queue_metric(previous, current, zeta)
        assert min(previous, current) - 1e-9 <= result <= max(previous, current) + 1e-9
