"""Tests for GT-TSCH slotframe creation (Section IV)."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.core.config import GtTschConfig
from repro.core.slotframe_builder import (
    GtSlotframeBuilder,
    broadcast_offsets,
    shared_offsets,
)
from repro.mac.cell import CellPurpose
from repro.mac.tsch import TschConfig, TschEngine


def make_engine():
    return TschEngine(0, TschConfig(), random.Random(1))


class TestBroadcastOffsets:
    def test_paper_example(self):
        """Section IV rule 1: m=20, k=5 -> offsets {0, 4, 8, 12, 16}."""
        assert broadcast_offsets(20, 5) == [0, 4, 8, 12, 16]

    def test_table_ii_configuration(self):
        assert broadcast_offsets(32, 4) == [0, 8, 16, 24]

    def test_exactly_k_offsets_even_when_m_not_multiple(self):
        offsets = broadcast_offsets(30, 4)
        assert len(offsets) == 4
        assert offsets[0] == 0

    def test_uniform_spacing(self):
        offsets = broadcast_offsets(32, 4)
        gaps = {b - a for a, b in zip(offsets, offsets[1:])}
        assert gaps == {8}

    def test_validation(self):
        with pytest.raises(ValueError):
            broadcast_offsets(10, 0)
        with pytest.raises(ValueError):
            broadcast_offsets(10, 10)

    @given(
        st.integers(min_value=4, max_value=128),
        st.integers(min_value=1, max_value=8),
    )
    def test_offsets_valid_and_distinct(self, length, k):
        if k >= length:
            return
        offsets = broadcast_offsets(length, k)
        assert len(offsets) == k
        assert len(set(offsets)) == k
        assert all(0 <= offset < length for offset in offsets)


class TestSharedOffsets:
    def test_avoid_broadcast_offsets(self):
        shared = shared_offsets(32, 4, 3, group_owner=0)
        assert not set(shared) & set(broadcast_offsets(32, 4))

    def test_count(self):
        assert len(shared_offsets(32, 4, 3, group_owner=5)) == 3

    def test_groups_differ_between_owners(self):
        """Different parent-child groups should not all collide on the same
        shared slots (Section IV assigns shared timeslots per group)."""
        distinct = {
            tuple(shared_offsets(32, 4, 3, group_owner=owner)) for owner in range(10)
        }
        assert len(distinct) > 3

    def test_deterministic_per_owner(self):
        assert shared_offsets(32, 4, 3, group_owner=7) == shared_offsets(32, 4, 3, group_owner=7)

    def test_too_small_slotframe_rejected(self):
        with pytest.raises(ValueError):
            shared_offsets(6, 4, 5)

    @given(
        st.integers(min_value=8, max_value=96),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=40),
    )
    def test_valid_distinct_and_disjoint_from_broadcast(self, length, k, count, owner):
        if k >= length or count > length - k:
            return
        offsets = shared_offsets(length, k, count, group_owner=owner)
        assert len(offsets) == count
        assert len(set(offsets)) == count
        assert all(0 <= offset < length for offset in offsets)
        assert not set(offsets) & set(broadcast_offsets(length, k))


class TestGtSlotframeBuilder:
    def test_build_installs_broadcast_cells_only(self):
        config = GtTschConfig(slotframe_length=32, num_broadcast_cells=4)
        builder = GtSlotframeBuilder(config)
        engine = make_engine()
        slotframe = builder.build(engine)
        assert slotframe.length == 32
        assert len(slotframe) == 4
        for cell in slotframe.all_cells():
            assert cell.purpose is CellPurpose.BROADCAST
            assert cell.is_broadcast
            assert not cell.is_shared  # broadcast cells never carry unicast
            assert cell.channel_offset == config.broadcast_channel_offset

    def test_shared_cells_towards_parent(self):
        config = GtTschConfig()
        builder = GtSlotframeBuilder(config)
        engine = make_engine()
        builder.build(engine)
        cells = builder.install_shared_cells_towards_parent(engine, parent=3, parent_channel_offset=5)
        assert len(cells) == config.num_shared_cells
        for cell in cells:
            assert cell.is_tx and cell.is_rx and cell.is_shared
            assert cell.neighbor == 3
            assert cell.channel_offset == 5
            assert cell.purpose is CellPurpose.SHARED

    def test_shared_cells_for_children(self):
        config = GtTschConfig()
        builder = GtSlotframeBuilder(config)
        engine = make_engine()
        builder.build(engine)
        cells = builder.install_shared_cells_for_children(engine, owner=0, child_channel_offset=2)
        assert len(cells) == config.num_shared_cells
        for cell in cells:
            assert cell.is_rx and cell.is_shared and not cell.is_tx
            assert cell.neighbor is None

    def test_remove_shared_cells_towards_parent(self):
        config = GtTschConfig()
        builder = GtSlotframeBuilder(config)
        engine = make_engine()
        builder.build(engine)
        builder.install_shared_cells_towards_parent(engine, parent=3, parent_channel_offset=5)
        removed = builder.remove_shared_cells_towards_parent(engine, parent=3)
        assert removed == config.num_shared_cells
        assert engine.count_cells(neighbor=3) == 0

    def test_reserved_and_negotiable_offsets_partition_slotframe(self):
        config = GtTschConfig(slotframe_length=32, num_broadcast_cells=4)
        builder = GtSlotframeBuilder(config)
        reserved = builder.reserved_offsets(group_owners=[0, 7])
        negotiable = builder.negotiable_offsets(group_owners=[0, 7])
        assert not set(negotiable) & reserved
        assert sorted(set(negotiable) | reserved) == list(range(32))

    def test_sleep_is_default_state(self):
        """Offsets without installed cells are sleep slots (rule: sleep is the
        default type when the slotframe is initialised)."""
        config = GtTschConfig(slotframe_length=32, num_broadcast_cells=4)
        builder = GtSlotframeBuilder(config)
        engine = make_engine()
        slotframe = builder.build(engine)
        assert len(slotframe.free_slot_offsets()) == 32 - 4
