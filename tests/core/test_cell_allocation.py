"""Tests for Unicast-Data cell placement (Section V rules)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cell_allocation import (
    CellAllocationError,
    ScheduleView,
    UnicastCellAllocator,
    validate_no_consecutive_rx,
)


def view(length=32, reserved=(), tx=(), rx_by_child=None, is_root=False):
    return ScheduleView(
        slotframe_length=length,
        reserved_offsets=set(reserved),
        tx_offsets=set(tx),
        rx_offsets_by_child={k: set(v) for k, v in (rx_by_child or {}).items()},
        is_root=is_root,
    )


class TestScheduleView:
    def test_free_offsets_exclude_everything_occupied(self):
        v = view(length=8, reserved={0}, tx={1, 2}, rx_by_child={5: {3}})
        assert v.free_offsets() == [4, 5, 6, 7]
        assert v.occupied_offsets() == {0, 1, 2, 3}

    def test_counts(self):
        v = view(tx={1, 2, 3}, rx_by_child={5: {4}, 6: {7, 8}})
        assert v.tx_count() == 3
        assert v.rx_count() == 3
        assert v.all_rx_offsets() == {4, 7, 8}


class TestRxBudget:
    def test_rule1_root_limited_only_by_free_offsets(self):
        v = view(length=8, reserved={0, 1}, is_root=True)
        assert UnicastCellAllocator(v).rx_budget() == 6

    def test_rule1_non_root_keeps_tx_above_rx(self):
        v = view(tx={1, 2, 3, 4}, rx_by_child={9: {5}})
        # tx=4, rx=1 -> can accept at most 4 - 1 - 1 = 2 more.
        assert UnicastCellAllocator(v).rx_budget() == 2

    def test_rule1_zero_budget_when_tx_not_ahead(self):
        v = view(tx={1}, rx_by_child={9: {2}})
        assert UnicastCellAllocator(v).rx_budget() == 0

    def test_budget_bounded_by_free_offsets(self):
        v = view(length=6, reserved={0, 1, 2}, tx={3, 4, 5}, is_root=False)
        assert UnicastCellAllocator(v).rx_budget() == 0  # no free offsets left


class TestPickRxOffsets:
    def test_grants_no_more_than_budget(self):
        v = view(tx={1, 2, 3})
        offsets = UnicastCellAllocator(v).pick_rx_offsets(child=9, count=10)
        assert len(offsets) == 2  # tx - rx - 1 = 2

    def test_grants_requested_amount_when_possible(self):
        v = view(tx={1, 2, 3, 4, 5}, is_root=False)
        offsets = UnicastCellAllocator(v).pick_rx_offsets(child=9, count=2)
        assert len(offsets) == 2

    def test_offsets_are_free_and_distinct(self):
        v = view(tx={1, 2, 3, 4, 5}, reserved={0, 8, 16, 24}, rx_by_child={7: {6}})
        offsets = UnicastCellAllocator(v).pick_rx_offsets(child=9, count=3)
        assert len(set(offsets)) == len(offsets)
        occupied = v.occupied_offsets()
        assert not set(offsets) & occupied

    def test_allowed_candidates_respected(self):
        """RFC 8480 CellList semantics: only offsets the child proposed."""
        v = view(tx={1, 2, 3, 4, 5}, is_root=False)
        offsets = UnicastCellAllocator(v).pick_rx_offsets(child=9, count=3, allowed={10, 11})
        assert set(offsets) <= {10, 11}

    def test_no_allowed_candidate_free_raises(self):
        v = view(tx={1, 2, 3})
        with pytest.raises(CellAllocationError):
            UnicastCellAllocator(v).pick_rx_offsets(child=9, count=1, allowed={1})

    def test_zero_count_returns_empty(self):
        assert UnicastCellAllocator(view(tx={1, 2})).pick_rx_offsets(9, 0) == []

    def test_root_with_no_free_offsets_raises(self):
        v = view(length=4, reserved={0, 1, 2, 3}, is_root=True)
        with pytest.raises(CellAllocationError):
            UnicastCellAllocator(v).pick_rx_offsets(child=9, count=1)

    def test_rule2_avoids_adjacent_rx_when_alternatives_exist(self):
        """New Rx cells avoid sitting next to existing Rx cells."""
        v = view(
            length=16,
            tx={1, 5, 9, 13},
            rx_by_child={7: {2}},
            is_root=False,
        )
        offsets = UnicastCellAllocator(v).pick_rx_offsets(child=9, count=1)
        assert offsets
        assert offsets[0] not in (1, 3)  # slots adjacent to the existing Rx at 2

    def test_rule3_spreads_same_child_receptions(self):
        """A child's Rx cells are spread instead of clustered (Fig. 5c)."""
        v = view(length=32, tx=set(range(1, 12)), rx_by_child={7: {13}}, is_root=False)
        offsets = UnicastCellAllocator(v).pick_rx_offsets(child=7, count=2)
        for offset in offsets:
            assert abs(offset - 13) > 1 or offset == 13

    def test_root_grants_spread_over_slotframe(self):
        v = view(length=32, reserved={0, 8, 16, 24}, is_root=True)
        offsets = UnicastCellAllocator(v).pick_rx_offsets(child=1, count=4)
        assert len(offsets) == 4
        gaps = [b - a for a, b in zip(offsets, offsets[1:])]
        assert max(gaps) >= 2  # not simply the first four consecutive slots


class TestPickReleaseOffsets:
    def test_release_most_recent_first(self):
        v = view(tx={1, 2, 3, 4}, rx_by_child={9: {5, 11, 21}})
        release = UnicastCellAllocator(v).pick_release_offsets(child=9, count=2)
        assert release == [11, 21]

    def test_release_nothing_for_unknown_child(self):
        v = view(tx={1})
        assert UnicastCellAllocator(v).pick_release_offsets(child=4, count=2) == []


class TestValidateNoConsecutiveRx:
    def test_detects_back_to_back_rx(self):
        violations = validate_no_consecutive_rx(10, tx_offsets=[5], rx_offsets=[1, 2])
        assert violations

    def test_accepts_interleaved_schedule(self):
        violations = validate_no_consecutive_rx(10, tx_offsets=[2, 6], rx_offsets=[1, 4])
        assert violations == []

    def test_wrap_around_detected(self):
        violations = validate_no_consecutive_rx(10, tx_offsets=[5], rx_offsets=[9, 0])
        assert violations

    def test_empty_inputs_are_valid(self):
        assert validate_no_consecutive_rx(10, [], [1, 2]) == []
        assert validate_no_consecutive_rx(10, [1], []) == []


class TestAllocatorProperties:
    @settings(deadline=None, max_examples=60)
    @given(
        tx=st.sets(st.integers(min_value=1, max_value=31), min_size=1, max_size=12),
        existing_rx=st.sets(st.integers(min_value=1, max_value=31), max_size=6),
        count=st.integers(min_value=1, max_value=8),
    )
    def test_rule1_invariant_maintained(self, tx, existing_rx, count):
        """After any grant, a non-root node still has tx > rx."""
        existing_rx = existing_rx - tx
        v = view(length=32, reserved={0}, tx=tx, rx_by_child={99: existing_rx})
        allocator = UnicastCellAllocator(v)
        try:
            granted = allocator.pick_rx_offsets(child=5, count=count)
        except CellAllocationError:
            return
        assert len(tx) > len(existing_rx) + len(granted) or len(granted) == 0

    @settings(deadline=None, max_examples=60)
    @given(
        tx=st.sets(st.integers(min_value=1, max_value=31), min_size=4, max_size=12),
        count=st.integers(min_value=1, max_value=6),
    )
    def test_granted_offsets_never_collide_with_schedule(self, tx, count):
        v = view(length=32, reserved={0, 8, 16, 24}, tx=tx)
        allocator = UnicastCellAllocator(v)
        try:
            granted = allocator.pick_rx_offsets(child=5, count=count)
        except CellAllocationError:
            return
        assert not set(granted) & v.occupied_offsets()
        assert len(set(granted)) == len(granted)
