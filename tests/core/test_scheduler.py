"""Tests for the GT-TSCH scheduling function integrated with the node stack."""

from repro.mac.cell import CellPurpose
from repro.net.topology import line_topology, star_topology
from repro.sixtop.messages import CellDescriptor, SixPCommand, SixPMessage, SixPMessageType, SixPReturnCode

from tests.conftest import make_gt_network


def add_request(num_cells, purpose="data", cell_list=None, owned=None, seqnum=0):
    metadata = {"purpose": purpose}
    if owned is not None:
        metadata["owned"] = owned
    return SixPMessage(
        message_type=SixPMessageType.REQUEST,
        command=SixPCommand.ADD,
        seqnum=seqnum,
        num_cells=num_cells,
        cell_list=list(cell_list or []),
        metadata=metadata,
    )


class TestStartup:
    def test_root_builds_slotframe_and_picks_channel(self, gt_star_network):
        gt_star_network.start()
        root = gt_star_network.nodes[0]
        scheduler = root.scheduler
        assert scheduler.own_child_channel is not None
        assert scheduler.own_child_channel != scheduler.config.broadcast_channel_offset
        slotframe = root.tsch.get_slotframe(0)
        assert slotframe.length == scheduler.config.slotframe_length
        assert slotframe.count_cells(purpose=CellPurpose.BROADCAST) == scheduler.config.num_broadcast_cells
        assert slotframe.count_cells(purpose=CellPurpose.SHARED) == scheduler.config.num_shared_cells

    def test_non_root_waits_for_parent_channel(self, gt_star_network):
        gt_star_network.start()
        leaf = gt_star_network.nodes[1]
        assert leaf.scheduler.own_child_channel is None
        assert leaf.scheduler.parent_channel_offset is None

    def test_eb_fields_advertise_child_channel(self, gt_star_network):
        gt_star_network.start()
        root = gt_star_network.nodes[0]
        leaf = gt_star_network.nodes[1]
        assert root.scheduler.eb_fields() == {"child_channel": root.scheduler.own_child_channel}
        assert leaf.scheduler.eb_fields() == {}

    def test_dio_fields_advertise_l_rx(self, gt_star_network):
        gt_star_network.start()
        root = gt_star_network.nodes[0]
        fields = root.scheduler.dio_fields()
        assert fields["l_rx"] > 0


class TestChannelLearningAndBootstrap:
    def test_eb_reception_triggers_bootstrap(self, gt_star_network):
        gt_star_network.start()
        gt_star_network.run_seconds(10.0)
        for node_id in (1, 2, 3):
            scheduler = gt_star_network.nodes[node_id].scheduler
            assert scheduler.parent_channel_offset == gt_star_network.nodes[0].scheduler.own_child_channel
            assert scheduler.own_child_channel is not None

    def test_siblings_get_distinct_child_channels(self, gt_star_network):
        gt_star_network.start()
        gt_star_network.run_seconds(15.0)
        channels = {
            gt_star_network.nodes[node_id].scheduler.own_child_channel for node_id in (1, 2, 3)
        }
        assert None not in channels
        assert len(channels) == 3

    def test_shared_cells_installed_towards_parent(self, gt_star_network):
        gt_star_network.start()
        gt_star_network.run_seconds(10.0)
        leaf = gt_star_network.nodes[1]
        shared = [
            cell
            for cell in leaf.tsch.all_cells()
            if cell.purpose is CellPurpose.SHARED and cell.neighbor == 0
        ]
        assert shared
        assert all(cell.is_tx for cell in shared)

    def test_sixp_cells_negotiated(self, gt_star_network):
        gt_star_network.start()
        gt_star_network.run_seconds(15.0)
        leaf = gt_star_network.nodes[1]
        root = gt_star_network.nodes[0]
        tx_6p = [
            cell
            for cell in leaf.tsch.all_cells()
            if cell.purpose is CellPurpose.UNICAST_6P and cell.is_tx
        ]
        assert len(tx_6p) == leaf.scheduler.config.sixp_cells_per_neighbor
        # The parent installed the matching Rx cells.
        rx_6p = [
            cell
            for cell in root.tsch.all_cells()
            if cell.purpose is CellPurpose.UNICAST_6P and cell.neighbor == 1
        ]
        assert {c.slot_offset for c in rx_6p} == {c.slot_offset for c in tx_6p}


class TestSixPResponder:
    def test_ask_channel_before_own_channel_is_busy(self, gt_star_network):
        gt_star_network.start()
        leaf = gt_star_network.nodes[1]
        code, fields = leaf.scheduler.on_sixp_request(
            5,
            SixPMessage(
                message_type=SixPMessageType.REQUEST,
                command=SixPCommand.ASK_CHANNEL,
                seqnum=0,
            ),
        )
        assert code is SixPReturnCode.ERR_BUSY

    def test_ask_channel_grant(self, gt_star_network):
        gt_star_network.start()
        root = gt_star_network.nodes[0]
        code, fields = root.scheduler.on_sixp_request(
            1,
            SixPMessage(
                message_type=SixPMessageType.REQUEST,
                command=SixPCommand.ASK_CHANNEL,
                seqnum=0,
            ),
        )
        assert code is SixPReturnCode.SUCCESS
        granted = fields["channel_offset"]
        assert granted != root.scheduler.own_child_channel
        assert granted != root.scheduler.config.broadcast_channel_offset

    def test_add_grants_cells_on_own_channel(self, gt_star_network):
        gt_star_network.start()
        root = gt_star_network.nodes[0]
        code, fields = root.scheduler.on_sixp_request(1, add_request(2))
        assert code is SixPReturnCode.SUCCESS
        assert fields["num_cells"] == 2
        for descriptor in fields["cell_list"]:
            assert descriptor.channel_offset == root.scheduler.own_child_channel
        assert root.scheduler.rx_data_cell_count() == 2

    def test_add_respects_candidate_cell_list(self, gt_star_network):
        gt_star_network.start()
        root = gt_star_network.nodes[0]
        candidates = [CellDescriptor(5, 0), CellDescriptor(6, 0)]
        code, fields = root.scheduler.on_sixp_request(
            1, add_request(2, cell_list=candidates)
        )
        assert code is SixPReturnCode.SUCCESS
        assert {d.slot_offset for d in fields["cell_list"]} <= {5, 6}

    def test_add_records_outstanding_demand_when_budget_short(self, gt_star_network):
        gt_star_network.start()
        leaf = gt_star_network.nodes[1]
        leaf.scheduler.own_child_channel = 5  # pretend ASK-CHANNEL completed
        # A leaf with no Tx cells has budget 0 -> cannot grant, records demand.
        code, fields = leaf.scheduler.on_sixp_request(9, add_request(3))
        assert code is SixPReturnCode.ERR_NORES
        assert leaf.scheduler._child_outstanding[9] == 3

    def test_reconciliation_drops_orphan_cells(self, gt_star_network):
        gt_star_network.start()
        root = gt_star_network.nodes[0]
        code, fields = root.scheduler.on_sixp_request(1, add_request(3, owned=0, seqnum=0))
        assert code is SixPReturnCode.SUCCESS
        assert root.scheduler.rx_data_cell_count() == 3
        # The child reports that it owns none of them (response was lost).
        code, fields = root.scheduler.on_sixp_request(1, add_request(1, owned=0, seqnum=1))
        assert code is SixPReturnCode.SUCCESS
        # Orphans were garbage-collected before the new grant.
        assert root.scheduler.rx_data_cell_count() == 1

    def test_delete_removes_cells(self, gt_star_network):
        gt_star_network.start()
        root = gt_star_network.nodes[0]
        _, fields = root.scheduler.on_sixp_request(1, add_request(2))
        offsets = [d.slot_offset for d in fields["cell_list"]]
        code, fields = root.scheduler.on_sixp_request(
            1,
            SixPMessage(
                message_type=SixPMessageType.REQUEST,
                command=SixPCommand.DELETE,
                seqnum=1,
                num_cells=1,
                cell_list=[CellDescriptor(offsets[0], 0)],
                metadata={"purpose": "data"},
            ),
        )
        assert code is SixPReturnCode.SUCCESS
        assert root.scheduler.rx_data_cell_count() == 1

    def test_unknown_command_rejected(self, gt_star_network):
        gt_star_network.start()
        root = gt_star_network.nodes[0]

        class FakeCommand:
            pass

        message = SixPMessage(
            message_type=SixPMessageType.REQUEST, command=SixPCommand.ADD, seqnum=0
        )
        message.command = "bogus"
        code, _ = root.scheduler.on_sixp_request(1, message)
        assert code is SixPReturnCode.ERR


class TestDataPlaneConvergence:
    def test_leaf_obtains_tx_data_cells_under_traffic(self):
        network = make_gt_network(star_topology(3), rate_ppm=120)
        network.run_seconds(25.0)
        for node_id in (1, 2, 3):
            assert network.nodes[node_id].scheduler.tx_data_cell_count() >= 1

    def test_tx_exceeds_rx_on_forwarding_nodes(self):
        network = make_gt_network(line_topology(4, spacing=25.0), rate_ppm=120)
        network.run_seconds(40.0)
        for node_id in (1, 2):
            scheduler = network.nodes[node_id].scheduler
            if scheduler.rx_data_cell_count() > 0:
                assert scheduler.tx_data_cell_count() > scheduler.rx_data_cell_count()

    def test_parent_and_child_schedules_stay_consistent(self):
        network = make_gt_network(star_topology(3), rate_ppm=120)
        network.run_seconds(30.0)
        root = network.nodes[0]
        for child_id in (1, 2, 3):
            child = network.nodes[child_id]
            child_tx_offsets = {
                cell.slot_offset
                for cell in child.tsch.all_cells()
                if cell.purpose is CellPurpose.UNICAST_DATA and cell.is_tx
            }
            root_rx_offsets = {
                cell.slot_offset
                for cell in root.tsch.all_cells()
                if cell.purpose is CellPurpose.UNICAST_DATA and cell.neighbor == child_id
            }
            # Every Tx cell of the child has a matching Rx cell at the root
            # (the converse may transiently not hold while a grant is in flight).
            assert child_tx_offsets <= root_rx_offsets

    def test_no_conflicting_allocation_at_one_node(self):
        """A node never holds two negotiated cells at the same slot offset."""
        network = make_gt_network(line_topology(4, spacing=25.0), rate_ppm=165)
        network.run_seconds(40.0)
        for node in network.nodes.values():
            negotiated = [
                cell
                for cell in node.tsch.all_cells()
                if cell.purpose in (CellPurpose.UNICAST_DATA, CellPurpose.UNICAST_6P)
            ]
            offsets = [cell.slot_offset for cell in negotiated]
            assert len(offsets) == len(set(offsets))

    def test_parent_switch_cleans_old_cells(self, gt_star_network):
        gt_star_network.start()
        gt_star_network.run_seconds(20.0)
        leaf = gt_star_network.nodes[1]
        assert leaf.scheduler.tx_data_cell_count() >= 0
        # Mimic what RPL does on a real switch before notifying the scheduler.
        leaf.rpl.preferred_parent = 2
        leaf.scheduler.on_parent_changed(0, 2)
        remaining_to_old_parent = [
            cell for cell in leaf.tsch.all_cells() if cell.neighbor == 0
        ]
        assert remaining_to_old_parent == []
        assert leaf.scheduler.parent_channel_offset in (None, leaf.scheduler._eb_channel_cache.get(2))

    def test_load_balance_requests_only_when_needed(self, gt_star_network):
        gt_star_network.start()
        gt_star_network.run_seconds(20.0)
        leaf = gt_star_network.nodes[2]
        # No traffic at all: the game should not keep requesting cells.
        assert leaf.scheduler.last_game_request <= 1
