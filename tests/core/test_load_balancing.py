"""Tests for load balancing (Section VI, Eq. (1)) and the EWMA queue metric."""

import pytest
from hypothesis import given, strategies as st

from repro.core.load_balancing import (
    LoadObservation,
    QueueMetric,
    compute_minimum_tx_cells,
    generation_cells_per_slotframe,
)


class TestEquationOne:
    def test_paper_formula(self):
        """l_tx_min = l_g + l_tx_cs - l_tx_free."""
        assert compute_minimum_tx_cells(2, 3, 1) == 4
        assert compute_minimum_tx_cells(1, 0, 0) == 1

    def test_clamped_at_zero_when_spare_capacity_exceeds_demand(self):
        assert compute_minimum_tx_cells(1, 1, 5) == 0

    def test_rejects_negative_inputs(self):
        with pytest.raises(ValueError):
            compute_minimum_tx_cells(-1, 0, 0)
        with pytest.raises(ValueError):
            compute_minimum_tx_cells(0, -1, 0)
        with pytest.raises(ValueError):
            compute_minimum_tx_cells(0, 0, -1)

    @given(
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=20),
    )
    def test_non_negative_and_monotone_in_demand(self, l_g, child, free):
        base = compute_minimum_tx_cells(l_g, child, free)
        assert base >= 0
        assert compute_minimum_tx_cells(l_g + 1, child, free) >= base
        assert compute_minimum_tx_cells(l_g, child + 1, free) >= base
        assert compute_minimum_tx_cells(l_g, child, free + 1) <= base


class TestGenerationCells:
    def test_table_ii_slotframe(self):
        """120 ppm with a 32-slot / 15 ms slotframe = 0.96 packets/slotframe -> 1 cell."""
        assert generation_cells_per_slotframe(120, 32, 0.015) == 1

    def test_heavy_load(self):
        assert generation_cells_per_slotframe(165, 32, 0.015) == 2

    def test_zero_rate_needs_no_cells(self):
        assert generation_cells_per_slotframe(0, 32, 0.015) == 0

    def test_longer_slotframes_need_more_cells(self):
        short = generation_cells_per_slotframe(120, 32, 0.015)
        long = generation_cells_per_slotframe(120, 80, 0.015)
        assert long > short

    def test_validation(self):
        with pytest.raises(ValueError):
            generation_cells_per_slotframe(-1, 32, 0.015)
        with pytest.raises(ValueError):
            generation_cells_per_slotframe(10, 0, 0.015)
        with pytest.raises(ValueError):
            generation_cells_per_slotframe(10, 32, 0.0)

    @given(
        st.floats(min_value=0.0, max_value=600.0),
        st.integers(min_value=4, max_value=128),
    )
    def test_cells_cover_offered_load(self, rate, slotframe_length):
        cells = generation_cells_per_slotframe(rate, slotframe_length, 0.015)
        packets_per_slotframe = rate / 60.0 * slotframe_length * 0.015
        assert cells >= packets_per_slotframe - 1e-6
        assert cells <= packets_per_slotframe + 1.0


class TestQueueMetric:
    def test_eq6_single_update(self):
        metric = QueueMetric(zeta=0.5, q_max=8)
        assert metric.update(4) == pytest.approx(2.0)
        assert metric.update(4) == pytest.approx(3.0)

    def test_zeta_zero_tracks_instantaneous_queue(self):
        metric = QueueMetric(zeta=0.0, q_max=8)
        metric.update(5)
        assert metric.value == 5.0

    def test_zeta_one_never_moves(self):
        metric = QueueMetric(zeta=1.0, q_max=8)
        metric.update(8)
        assert metric.value == 0.0

    def test_clamps_to_q_max(self):
        metric = QueueMetric(zeta=0.0, q_max=8)
        metric.update(100)
        assert metric.value == 8.0
        assert metric.occupancy == 1.0

    def test_occupancy_bounds(self):
        metric = QueueMetric(zeta=0.5, q_max=8)
        assert metric.occupancy == 0.0
        for _ in range(50):
            metric.update(8)
        assert metric.occupancy == pytest.approx(1.0, abs=1e-3)

    def test_reset(self):
        metric = QueueMetric()
        metric.update(5)
        metric.reset()
        assert metric.value == 0.0
        assert metric.updates == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            QueueMetric(zeta=2.0)
        with pytest.raises(ValueError):
            QueueMetric(q_max=0)

    @given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=50))
    def test_value_always_within_queue_bounds(self, samples):
        metric = QueueMetric(zeta=0.6, q_max=8)
        for sample in samples:
            metric.update(sample)
            assert 0.0 <= metric.value <= 8.0


class TestLoadObservation:
    def test_reset_returns_snapshot_and_clears(self):
        observation = LoadObservation()
        observation.packets_generated = 5
        observation.child_requested_cells = 3
        snapshot = observation.reset()
        assert snapshot.packets_generated == 5
        assert snapshot.child_requested_cells == 3
        assert observation.packets_generated == 0
        assert observation.child_requested_cells == 0
