"""Tests for GT-TSCH channel allocation (Section III, Algorithm 1)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.channel_allocation import (
    ChannelAllocationError,
    ChannelAllocator,
    allocate_channels_in_tree,
    verify_three_hop_uniqueness,
)


class TestChannelAllocator:
    def test_available_offsets_exclude_broadcast(self):
        allocator = ChannelAllocator(num_channels=8, broadcast_offset=0)
        assert 0 not in allocator.available_offsets()
        assert len(allocator.available_offsets()) == 7

    def test_root_picks_child_channel(self):
        allocator = ChannelAllocator(num_channels=8)
        channel = allocator.pick_own_child_channel(random.Random(1))
        assert channel != allocator.broadcast_offset
        assert allocator.child_facing_offset == channel

    def test_root_pick_deterministic_without_rng(self):
        allocator = ChannelAllocator(num_channels=8)
        assert allocator.pick_own_child_channel() == 1

    def test_grant_avoids_forbidden_offsets(self):
        allocator = ChannelAllocator(num_channels=8, broadcast_offset=0)
        allocator.parent_facing_offset = 1
        allocator.child_facing_offset = 2
        granted = allocator.grant_child_channel(10)
        assert granted not in {0, 1, 2}

    def test_siblings_get_distinct_channels(self):
        allocator = ChannelAllocator(num_channels=8, broadcast_offset=0)
        allocator.child_facing_offset = 1
        grants = [allocator.grant_child_channel(child) for child in range(10, 15)]
        assert len(set(grants)) == len(grants)

    def test_grant_is_idempotent_per_child(self):
        allocator = ChannelAllocator(num_channels=8)
        allocator.child_facing_offset = 1
        assert allocator.grant_child_channel(10) == allocator.grant_child_channel(10)

    def test_exhaustion_raises(self):
        allocator = ChannelAllocator(num_channels=4, broadcast_offset=0)
        allocator.parent_facing_offset = 1
        allocator.child_facing_offset = 2
        allocator.grant_child_channel(10)  # takes offset 3
        with pytest.raises(ChannelAllocationError):
            allocator.grant_child_channel(11)

    def test_release_child_frees_channel(self):
        allocator = ChannelAllocator(num_channels=4, broadcast_offset=0)
        allocator.parent_facing_offset = 1
        allocator.child_facing_offset = 2
        first = allocator.grant_child_channel(10)
        allocator.release_child(10)
        assert allocator.grant_child_channel(11) == first

    def test_max_children_matches_section_iii(self):
        """n - 2 - 1 children with n channels (broadcast + parent + own)."""
        allocator = ChannelAllocator(num_channels=8, broadcast_offset=0)
        allocator.parent_facing_offset = 1
        allocator.child_facing_offset = 2
        assert allocator.max_children() == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            ChannelAllocator(num_channels=2)
        with pytest.raises(ValueError):
            ChannelAllocator(num_channels=8, broadcast_offset=8)


def build_parent_map(depth, branching):
    """A complete tree as a parent map."""
    parent_map = {0: None}
    next_id = 1
    frontier = [0]
    for _ in range(depth):
        new_frontier = []
        for parent in frontier:
            for _ in range(branching):
                parent_map[next_id] = parent
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return parent_map


class TestTreeAllocation:
    def test_seven_node_example(self):
        """The Fig. 3/Fig. 6 style tree: every invariant holds."""
        parent_map = {0: None, 1: 0, 2: 0, 3: 0, 4: 1, 5: 1, 6: 2}
        assignment = allocate_channels_in_tree(parent_map, num_channels=8)
        assert verify_three_hop_uniqueness(parent_map, assignment) == []
        assert all(channel != 0 for channel in assignment.values())

    def test_deep_chain(self):
        parent_map = {i: (i - 1 if i else None) for i in range(10)}
        assignment = allocate_channels_in_tree(parent_map, num_channels=8)
        assert verify_three_hop_uniqueness(parent_map, assignment) == []
        # Along a chain, consecutive and two-apart nodes must differ.
        for node in range(2, 10):
            assert assignment[node] != assignment[node - 1]
            assert assignment[node] != assignment[node - 2]

    def test_multiple_roots(self):
        parent_map = {0: None, 1: 0, 10: None, 11: 10}
        assignment = allocate_channels_in_tree(parent_map, num_channels=8)
        assert set(assignment) == {0, 1, 10, 11}

    def test_too_many_children_rejected(self):
        parent_map = {0: None}
        for child in range(1, 8):
            parent_map[child] = 0
        with pytest.raises(ChannelAllocationError):
            allocate_channels_in_tree(parent_map, num_channels=8)

    def test_requires_a_root(self):
        with pytest.raises(ValueError):
            allocate_channels_in_tree({1: 2, 2: 1}, num_channels=8)

    def test_rng_controls_root_choice(self):
        parent_map = {0: None, 1: 0}
        a = allocate_channels_in_tree(parent_map, num_channels=8, rng=random.Random(1))
        b = allocate_channels_in_tree(parent_map, num_channels=8, rng=random.Random(1))
        assert a == b

    @settings(deadline=None, max_examples=50)
    @given(
        depth=st.integers(min_value=1, max_value=4),
        branching=st.integers(min_value=1, max_value=4),
    )
    def test_three_hop_uniqueness_property(self, depth, branching):
        """Algorithm 1 keeps channels unique along any three-hop path and among
        siblings, for every tree it can serve (branching <= n - 3)."""
        parent_map = build_parent_map(depth, branching)
        assignment = allocate_channels_in_tree(parent_map, num_channels=8)
        assert verify_three_hop_uniqueness(parent_map, assignment) == []

    def test_verifier_detects_violations(self):
        parent_map = {0: None, 1: 0, 2: 1}
        bad = {0: 3, 1: 3, 2: 5}
        violations = verify_three_hop_uniqueness(parent_map, bad)
        assert violations
        bad_siblings = {0: 3, 1: 4, 2: 4}
        parent_map2 = {0: None, 1: 0, 2: 0}
        assert verify_three_hop_uniqueness(parent_map2, bad_siblings)
