"""Tests for the GT-TSCH configuration."""

import pytest

from repro.core.config import GtTschConfig
from repro.core.game import GameWeights


class TestGtTschConfig:
    def test_defaults_match_paper(self):
        config = GtTschConfig()
        assert config.slotframe_length == 32
        assert config.sixp_cells_per_neighbor == 2
        assert config.num_channels == 8
        assert config.q_max == 8

    def test_max_children_rule(self):
        """Section III: with n channels, at most n - 2 - 1 children."""
        assert GtTschConfig(num_channels=8).max_children == 5
        assert GtTschConfig(num_channels=4).max_children == 1
        assert GtTschConfig(num_channels=3).max_children == 1

    def test_shared_cells_default_derived_from_children(self):
        """Section IV: shared timeslots = half the maximum number of children."""
        config = GtTschConfig(num_channels=8)
        assert config.num_shared_cells == 3  # ceil(5 / 2)

    def test_explicit_shared_cells_kept(self):
        assert GtTschConfig(num_shared_cells=2).num_shared_cells == 2

    def test_broadcast_spacing(self):
        assert GtTschConfig(slotframe_length=32, num_broadcast_cells=4).broadcast_spacing == 8
        assert GtTschConfig(slotframe_length=20, num_broadcast_cells=5).broadcast_spacing == 4

    def test_weights_default(self):
        config = GtTschConfig()
        assert isinstance(config.weights, GameWeights)
        assert config.weights.gamma > config.weights.beta  # queue cost dominates by default

    def test_validation(self):
        with pytest.raises(ValueError):
            GtTschConfig(slotframe_length=2)
        with pytest.raises(ValueError):
            GtTschConfig(num_broadcast_cells=0)
        with pytest.raises(ValueError):
            GtTschConfig(num_broadcast_cells=32, slotframe_length=32)
        with pytest.raises(ValueError):
            GtTschConfig(num_channels=2)
        with pytest.raises(ValueError):
            GtTschConfig(broadcast_channel_offset=9)
        with pytest.raises(ValueError):
            GtTschConfig(queue_ewma_zeta=1.5)
        with pytest.raises(ValueError):
            GtTschConfig(q_max=0)
        with pytest.raises(ValueError):
            GtTschConfig(sixp_cells_per_neighbor=0)
