"""Tests for the Nash-equilibrium analysis (Theorems 1-2 of the paper)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.game import GameWeights, PlayerState, optimal_tx_cells
from repro.core.nash import (
    best_response,
    best_response_dynamics,
    equilibrium_profile,
    is_nash_equilibrium,
    pseudo_gradient_jacobian,
    verify_concavity,
    verify_diagonal_strict_concavity,
)


def player(l_min=0.0, l_rx=10.0, rank=0.5, etx=1.5, q=2.0, q_max=8.0):
    return PlayerState(
        l_tx_min=l_min,
        l_rx_parent=l_rx,
        rank_normalised=rank,
        etx=etx,
        queue_metric=q,
        q_max=q_max,
    )


players_strategy = st.lists(
    st.builds(
        player,
        l_min=st.floats(min_value=0.0, max_value=5.0),
        l_rx=st.floats(min_value=5.0, max_value=25.0),
        rank=st.floats(min_value=0.05, max_value=1.0),
        etx=st.floats(min_value=1.0, max_value=6.0),
        q=st.floats(min_value=0.0, max_value=8.0),
        q_max=st.just(8.0),
    ),
    min_size=1,
    max_size=8,
)


class TestBestResponse:
    def test_best_response_matches_closed_form(self):
        p = player(rank=1.0, etx=1.0, q=4.0)
        weights = GameWeights(alpha=8.0, beta=1.0, gamma=4.0)
        assert best_response(p, weights) == pytest.approx(
            optimal_tx_cells(p, weights, integral=False)
        )

    @settings(deadline=None)
    @given(players_strategy)
    def test_dynamics_converge_in_one_round(self, players):
        """Payoffs are decoupled, so simultaneous best response is a fixed point."""
        result = best_response_dynamics(players)
        assert result.converged
        assert result.iterations <= 2
        expected = equilibrium_profile(players)
        assert result.profile == pytest.approx(expected)

    def test_dynamics_with_custom_initial_profile(self):
        players = [player(l_min=1.0), player(l_min=2.0)]
        result = best_response_dynamics(players, initial_profile=[9.0, 9.0])
        assert result.converged
        assert result.profile == pytest.approx(equilibrium_profile(players))

    def test_empty_player_list(self):
        result = best_response_dynamics([])
        assert result.converged
        assert result.profile == []


class TestTheorem1:
    @settings(deadline=None)
    @given(players_strategy)
    def test_payoffs_concave_over_strategy_sets(self, players):
        assert all(verify_concavity(p) for p in players)


class TestTheorem2:
    def test_jacobian_is_diagonal_with_negative_entries(self):
        players = [player(rank=0.5), player(rank=1.0), player(rank=0.25)]
        profile = [1.0, 2.0, 3.0]
        jacobian = pseudo_gradient_jacobian(players, profile)
        assert jacobian.shape == (3, 3)
        off_diagonal = jacobian - np.diag(np.diag(jacobian))
        assert np.allclose(off_diagonal, 0.0)
        assert np.all(np.diag(jacobian) < 0.0)

    @settings(deadline=None)
    @given(players_strategy)
    def test_diagonal_strict_concavity(self, players):
        assert verify_diagonal_strict_concavity(players)

    def test_diagonal_strict_concavity_with_extra_profiles(self):
        players = [player(), player(rank=0.2)]
        assert verify_diagonal_strict_concavity(players, profiles=[[1.0, 1.0], [5.0, 5.0]])


class TestNashEquilibrium:
    @settings(deadline=None, max_examples=30)
    @given(players_strategy)
    def test_closed_form_profile_is_a_nash_equilibrium(self, players):
        profile = equilibrium_profile(players)
        assert is_nash_equilibrium(profile, players)

    def test_non_equilibrium_profile_detected(self):
        players = [player(l_min=0.0, l_rx=20.0, rank=1.0, etx=1.0, q=8.0, q_max=8.0)]
        # Requesting nothing when the optimum is the parent's maximum is not
        # an equilibrium: the player can improve unilaterally.
        assert not is_nash_equilibrium([0.0], players)

    def test_uniqueness_via_strict_concavity(self):
        """Any profile differing from the closed form on an interior optimum
        is strictly improvable, so the equilibrium is unique."""
        players = [player(l_min=0.0, l_rx=50.0, rank=1.0, etx=1.0, q=4.0, q_max=8.0)]
        weights = GameWeights(alpha=8.0, beta=1.0, gamma=4.0)
        equilibrium = equilibrium_profile(players, weights)
        for delta in (-1.0, -0.5, 0.5, 1.0):
            candidate = [equilibrium[0] + delta]
            if players[0].l_tx_min <= candidate[0] <= players[0].l_rx_parent:
                assert not is_nash_equilibrium(candidate, players, weights)

    def test_integral_equilibrium_profile(self):
        players = [player(l_min=1.0), player(l_min=3.0)]
        profile = equilibrium_profile(players, integral=True)
        assert all(value == int(value) for value in profile)
