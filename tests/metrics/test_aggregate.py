"""Tests for cross-seed metric aggregation (hand-computed statistics)."""

import math

import pytest

from repro.metrics.aggregate import NUMERIC_KEYS, MetricsAggregate, t_critical_95
from repro.metrics.collector import NetworkMetrics


def run_with(pdr: float, delay: float = 100.0) -> NetworkMetrics:
    metrics = NetworkMetrics(scheduler="GT-TSCH")
    metrics.pdr_percent = pdr
    metrics.end_to_end_delay_ms = delay
    metrics.generated = 100
    metrics.delivered = int(pdr)
    return metrics


class TestStatistics:
    def test_mean_std_ci_hand_computed(self):
        # pdr values 90, 94, 98: mean 94, sample std 4, CI95 = t(2) * 4 / sqrt(3).
        aggregate = MetricsAggregate.from_runs(
            [run_with(90.0), run_with(94.0), run_with(98.0)], seeds=[1, 2, 3]
        )
        assert aggregate.n == 3
        assert aggregate.mean("pdr_percent") == pytest.approx(94.0)
        assert aggregate.std("pdr_percent") == pytest.approx(4.0)
        assert aggregate.ci95("pdr_percent") == pytest.approx(
            4.303 * 4.0 / math.sqrt(3.0)
        )

    def test_two_runs(self):
        # 80 and 100: mean 90, std = sqrt(((-10)^2 + 10^2) / 1) = sqrt(200).
        aggregate = MetricsAggregate.from_runs([run_with(80.0), run_with(100.0)])
        assert aggregate.mean("pdr_percent") == pytest.approx(90.0)
        assert aggregate.std("pdr_percent") == pytest.approx(math.sqrt(200.0))
        assert aggregate.ci95("pdr_percent") == pytest.approx(
            12.706 * math.sqrt(200.0) / math.sqrt(2.0)
        )

    def test_single_run_is_exact_with_zero_dispersion(self):
        run = run_with(93.7, delay=123.456)
        aggregate = MetricsAggregate.from_runs([run], seeds=[7])
        # Bit-identical to the underlying run, not merely approximately equal.
        assert aggregate.as_dict() == run.as_dict()
        assert aggregate.std("pdr_percent") == 0.0
        assert aggregate.ci95("pdr_percent") == 0.0

    def test_empty_runs_rejected(self):
        with pytest.raises(ValueError):
            MetricsAggregate.from_runs([])

    def test_t_critical_values(self):
        assert t_critical_95(1) == pytest.approx(12.706)
        assert t_critical_95(30) == pytest.approx(2.042)
        assert t_critical_95(200) == pytest.approx(1.96)


class TestDictViews:
    def test_as_dict_matches_network_metrics_keys(self):
        aggregate = MetricsAggregate.from_runs([run_with(90.0), run_with(98.0)])
        data = aggregate.as_dict()
        assert set(data) == set(NetworkMetrics().as_dict())
        assert data["scheduler"] == "GT-TSCH"
        assert data["pdr_percent"] == pytest.approx(94.0)

    def test_stats_dict_columns(self):
        aggregate = MetricsAggregate.from_runs([run_with(90.0), run_with(98.0)])
        stats = aggregate.stats_dict()
        assert stats["n_seeds"] == 2
        for key in NUMERIC_KEYS:
            assert f"{key}_std" in stats
            assert f"{key}_ci95" in stats
        assert stats["pdr_percent_std"] == pytest.approx(math.sqrt(32.0))

    def test_values_in_seed_order(self):
        aggregate = MetricsAggregate.from_runs(
            [run_with(90.0), run_with(98.0)], seeds=[5, 9]
        )
        assert aggregate.values("pdr_percent") == [90.0, 98.0]
        assert aggregate.seeds == [5, 9]
