"""Tests for the metrics collector."""

import pytest

from repro.metrics.collector import MetricsCollector, NetworkMetrics
from repro.net.topology import star_topology

from tests.conftest import make_gt_network


class TestMeasurementWindow:
    def test_nothing_recorded_outside_window(self):
        network = make_gt_network(star_topology(2), rate_ppm=120)
        network.run_seconds(10.0)  # warm-up: no measurement opened
        metrics = network.metrics.finalize(network.nodes.values(), network.clock.now, "GT-TSCH")
        assert metrics.generated == 0
        assert metrics.delivered == 0

    def test_generation_and_delivery_counted_in_window(self):
        network = make_gt_network(star_topology(3), rate_ppm=120)
        metrics = network.run_experiment(warmup_s=10.0, measurement_s=20.0, drain_s=3.0)
        assert metrics.generated > 0
        assert 0 < metrics.delivered <= metrics.generated
        assert metrics.lost == metrics.generated - metrics.delivered

    def test_pdr_and_throughput_consistent(self):
        network = make_gt_network(star_topology(3), rate_ppm=120)
        metrics = network.run_experiment(warmup_s=10.0, measurement_s=20.0, drain_s=3.0)
        assert metrics.pdr_percent == pytest.approx(
            100.0 * metrics.delivered / metrics.generated
        )
        assert metrics.received_per_minute == pytest.approx(
            metrics.delivered / (metrics.duration_s / 60.0)
        )
        assert metrics.packet_loss_per_minute == pytest.approx(
            metrics.lost / (metrics.duration_s / 60.0)
        )

    def test_delay_statistics_present_when_delivered(self):
        network = make_gt_network(star_topology(3), rate_ppm=60)
        metrics = network.run_experiment(warmup_s=10.0, measurement_s=20.0, drain_s=3.0)
        assert metrics.end_to_end_delay_ms > 0.0
        assert metrics.delay_p95_ms >= metrics.end_to_end_delay_ms * 0.5
        assert metrics.delay_max_ms >= metrics.delay_p95_ms
        assert metrics.avg_hops >= 1.0

    def test_duty_cycle_reported_per_node_average(self):
        network = make_gt_network(star_topology(3), rate_ppm=60)
        metrics = network.run_experiment(warmup_s=10.0, measurement_s=20.0, drain_s=3.0)
        assert 0.0 < metrics.radio_duty_cycle_percent < 100.0
        assert len(metrics.per_node) == 4

    def test_duplicate_delivery_not_double_counted(self):
        collector = MetricsCollector()

        class FakeQueueOwner:
            class event_queue:
                now = 1.0

        class FakeNode:
            node_id = 0
            event_queue = FakeQueueOwner.event_queue

        class FakePacket:
            packet_id = 1
            created_at = 0.0
            hops = 2

        node = FakeNode()
        packet = FakePacket()
        collector.measuring = True
        collector.on_data_generated(node, packet)
        collector.on_data_delivered(node, packet)
        collector.on_data_delivered(node, packet)
        assert len(collector._delivered) == 1

    def test_delivery_of_unmeasured_packet_ignored(self):
        collector = MetricsCollector()

        class FakeNode:
            node_id = 0

            class event_queue:
                now = 1.0

        class FakePacket:
            packet_id = 99
            created_at = 0.0
            hops = 1

        collector.on_data_delivered(FakeNode(), FakePacket())
        assert collector._delivered == {}


class TestNetworkMetrics:
    def test_as_dict_contains_all_panel_keys(self):
        metrics = NetworkMetrics(scheduler="X")
        data = metrics.as_dict()
        for key in (
            "pdr_percent",
            "end_to_end_delay_ms",
            "packet_loss_per_minute",
            "radio_duty_cycle_percent",
            "queue_loss_per_node",
            "received_per_minute",
        ):
            assert key in data

    def test_empty_run_produces_zeroes(self):
        collector = MetricsCollector()
        metrics = collector.finalize([], now=10.0, scheduler_name="empty")
        assert metrics.pdr_percent == 0.0
        assert metrics.received_per_minute == 0.0
        assert metrics.scheduler == "empty"


class TestSixpChurnMetric:
    def test_gt_tsch_reports_cell_relocations(self):
        network = make_gt_network(star_topology(4), rate_ppm=120)
        metrics = network.run_experiment(warmup_s=10.0, measurement_s=20.0, drain_s=3.0)
        # The window opens after the bootstrap ADDs of the warm-up, but the
        # load-balancing game keeps negotiating under load.
        assert metrics.sixp_cell_relocations >= 0
        total = sum(
            node.scheduler.relocation_count() for node in network.nodes.values()
        )
        assert total > 0  # bootstrap alone installs cells through 6P
        # Normalisation: relocations per load-balancing period over the window.
        period = next(iter(network.nodes.values())).scheduler.load_balance_period_s()
        assert period > 0
        assert metrics.sixp_relocations_per_lb_period == pytest.approx(
            metrics.sixp_cell_relocations * period / metrics.duration_s
        )

    def test_autonomous_schedulers_report_zero_churn(self):
        from repro.experiments.scenarios import traffic_load_scenario, MINIMAL

        scenario = traffic_load_scenario(
            rate_ppm=60.0, scheduler=MINIMAL, seed=1, measurement_s=6.0, warmup_s=4.0
        )
        network = scenario.build_network()
        metrics = network.run_experiment(4.0, 6.0, 2.0, MINIMAL)
        assert metrics.sixp_cell_relocations == 0
        assert metrics.sixp_relocations_per_lb_period == 0.0

    def test_churn_appears_in_as_dict_and_per_node(self):
        network = make_gt_network(star_topology(3), rate_ppm=120)
        metrics = network.run_experiment(warmup_s=8.0, measurement_s=10.0, drain_s=2.0)
        data = metrics.as_dict()
        assert "sixp_cell_relocations" in data
        assert "sixp_relocations_per_lb_period" in data
        for per_node in metrics.per_node.values():
            assert "sixp_cell_relocations" in per_node


class TestRecoveryMetrics:
    """Unit tests for the fault/recovery hooks, driven without a network."""

    def _collector(self):
        collector = MetricsCollector()
        collector.begin_measurement([], now=10.0)
        return collector

    def test_fault_free_run_reports_zeroes(self):
        collector = self._collector()
        collector.end_measurement(now=30.0)
        metrics = collector.finalize([], 30.0, "X")
        assert metrics.faults_injected == 0
        assert metrics.time_to_reconverge_s == 0.0
        assert metrics.pdr_under_churn_percent == 0.0
        assert metrics.packets_lost_to_crash == 0
        assert metrics.orphaned_cell_slots == 0

    def test_reconverge_time_averages_closed_episodes(self):
        collector = self._collector()
        collector.on_fault_injected("crash", 12.0)
        collector.on_node_orphaned(3, 12.0)
        collector.on_node_recovered(3, 14.0)  # 2 s episode
        collector.on_node_orphaned(5, 16.0)
        collector.on_node_recovered(5, 22.0)  # 6 s episode
        collector.end_measurement(now=30.0)
        metrics = collector.finalize([], 30.0, "X")
        assert metrics.time_to_reconverge_s == pytest.approx(4.0)

    def test_open_episode_censored_at_window_close(self):
        collector = self._collector()
        collector.on_fault_injected("crash", 12.0)
        collector.on_node_orphaned(3, 20.0)  # never recovers
        collector.end_measurement(now=30.0)
        metrics = collector.finalize([], 30.0, "X")
        assert metrics.time_to_reconverge_s == pytest.approx(10.0)

    def test_double_orphan_keeps_the_first_episode_start(self):
        collector = self._collector()
        collector.on_node_orphaned(3, 12.0)
        collector.on_node_orphaned(3, 15.0)  # duplicate: ignored
        collector.on_node_recovered(3, 16.0)
        collector.end_measurement(now=30.0)
        metrics = collector.finalize([], 30.0, "X")
        assert metrics.time_to_reconverge_s == pytest.approx(4.0)

    def test_recovery_without_episode_is_ignored(self):
        collector = self._collector()
        collector.on_node_recovered(3, 16.0)  # cold-start join
        collector.end_measurement(now=30.0)
        metrics = collector.finalize([], 30.0, "X")
        assert metrics.time_to_reconverge_s == 0.0

    def test_pdr_under_churn_counts_only_post_fault_packets(self):
        class FakeNode:
            def __init__(self, now):
                self.node_id = 1

                class _Queue:
                    pass

                self.event_queue = _Queue()
                self.event_queue.now = now

        class FakePacket:
            def __init__(self, packet_id, created_at):
                self.packet_id = packet_id
                self.created_at = created_at
                self.hops = 1

        collector = self._collector()
        # Two pre-fault packets, both delivered.
        for packet_id in (1, 2):
            packet = FakePacket(packet_id, created_at=11.0)
            collector.on_data_generated(FakeNode(11.0), packet)
            collector.on_data_delivered(FakeNode(12.0), packet)
        collector.on_fault_injected("crash", 15.0)
        # Four post-fault packets, one delivered.
        for packet_id in (3, 4, 5, 6):
            packet = FakePacket(packet_id, created_at=16.0)
            collector.on_data_generated(FakeNode(16.0), packet)
            if packet_id == 3:
                collector.on_data_delivered(FakeNode(17.0), packet)
        collector.end_measurement(now=30.0)
        metrics = collector.finalize([], 30.0, "X")
        assert metrics.pdr_percent == pytest.approx(100.0 * 3 / 6)
        assert metrics.pdr_under_churn_percent == pytest.approx(25.0)

    def test_crash_and_parent_loss_losses_are_summed(self):
        class FakeNode:
            node_id = 1

        class FakePacket:
            def __init__(self, packet_id):
                self.packet_id = packet_id
                self.created_at = 11.0
                self.hops = 0

        collector = self._collector()
        collector.measuring = True
        for packet_id, reason in ((1, "crash"), (2, "crash"), (3, "parent-loss")):
            packet = FakePacket(packet_id)

            class _Node:
                node_id = 1

                class event_queue:
                    now = 11.0

            collector.on_data_generated(_Node(), packet)
            collector.on_data_lost(_Node(), packet, reason)
        collector.on_cells_orphaned(4)
        collector.on_cells_orphaned(3)
        collector.end_measurement(now=30.0)
        metrics = collector.finalize([], 30.0, "X")
        assert metrics.packets_lost_to_crash == 3
        assert metrics.orphaned_cell_slots == 7

    def test_begin_measurement_resets_recovery_state(self):
        collector = self._collector()
        collector.on_fault_injected("crash", 12.0)
        collector.on_node_orphaned(3, 12.0)
        collector.on_cells_orphaned(5)
        collector.begin_measurement([], now=40.0)
        collector.end_measurement(now=60.0)
        metrics = collector.finalize([], 60.0, "X")
        assert metrics.faults_injected == 0
        assert metrics.time_to_reconverge_s == 0.0
        assert metrics.orphaned_cell_slots == 0


class TestJoinCensoring:
    """Edge cases of the join-episode clocks, driven without a network.

    The join and first-packet clocks are boot-relative and deliberately
    survive ``begin_measurement``; episodes still open when the window
    closes are censored at ``window_end`` rather than dropped, so sweeps
    over slow-forming networks report honest lower bounds.
    """

    def _finalize(self, collector, window_end=30.0):
        collector.end_measurement(now=window_end)
        return collector.finalize([], window_end, "X")

    def test_node_that_never_joins_is_censored_at_window_close(self):
        collector = MetricsCollector()
        collector.on_join_pending(5, 2.0)  # boots before the window opens
        collector.begin_measurement([], now=10.0)
        metrics = self._finalize(collector, window_end=30.0)
        assert metrics.nodes_joined == 0
        assert metrics.time_to_join_s == pytest.approx(28.0)
        assert metrics.time_to_first_packet_s == pytest.approx(28.0)

    def test_join_at_the_exact_final_slot_counts_as_joined(self):
        collector = MetricsCollector()
        collector.on_join_pending(5, 2.0)
        collector.begin_measurement([], now=10.0)
        collector.on_node_joined(5, 30.0)  # the very instant the window ends
        metrics = self._finalize(collector, window_end=30.0)
        assert metrics.nodes_joined == 1
        assert metrics.time_to_join_s == pytest.approx(28.0)
        # No packet made it: the first-packet episode is censored, equal to
        # the join duration only by coincidence of the timestamps.
        assert metrics.time_to_first_packet_s == pytest.approx(28.0)

    def test_reopened_episode_restarts_both_clocks(self):
        # A desync (or crash) while pending re-opens the episode: the clock
        # restarts from the *latest* boot, it does not accumulate.
        collector = MetricsCollector()
        collector.begin_measurement([], now=10.0)
        collector.on_join_pending(5, 12.0)
        collector.on_join_pending(5, 20.0)  # rebooted before ever joining
        collector.on_node_joined(5, 26.0)
        metrics = self._finalize(collector, window_end=30.0)
        assert metrics.nodes_joined == 1
        assert metrics.time_to_join_s == pytest.approx(6.0)

    def test_pending_boot_after_window_close_censors_to_zero(self):
        # An arrival landing exactly at (or after) the window close must not
        # produce a negative censored duration.
        collector = MetricsCollector()
        collector.begin_measurement([], now=10.0)
        collector.on_join_pending(5, 30.0)
        metrics = self._finalize(collector, window_end=30.0)
        assert metrics.nodes_joined == 0
        assert metrics.time_to_join_s == 0.0

    def test_join_keys_aggregate_with_dispersion_columns(self):
        from repro.metrics.aggregate import NUMERIC_KEYS, MetricsAggregate

        runs = []
        for joined, t_join in ((3, 10.0), (5, 14.0)):
            metrics = NetworkMetrics(scheduler="X")
            metrics.nodes_joined = joined
            metrics.time_to_join_s = t_join
            metrics.time_to_first_packet_s = t_join + 2.0
            runs.append(metrics)
        aggregate = MetricsAggregate.from_runs(runs, seeds=[1, 2])
        assert "time_to_join_s" in NUMERIC_KEYS
        assert aggregate.as_dict()["time_to_join_s"] == pytest.approx(12.0)
        assert aggregate.as_dict()["nodes_joined"] == pytest.approx(4.0)
        stats = aggregate.stats_dict()
        assert stats["time_to_join_s_std"] > 0.0
        assert "time_to_first_packet_s_ci95" in stats
