"""Tests for metric table rendering."""

from repro.metrics.collector import NetworkMetrics
from repro.metrics.report import (
    PANEL_KEYS,
    format_comparison_table,
    format_figure_report,
    format_metrics_table,
)


def metrics(scheduler, pdr, delay=100.0, throughput=500.0):
    m = NetworkMetrics(scheduler=scheduler)
    m.pdr_percent = pdr
    m.end_to_end_delay_ms = delay
    m.received_per_minute = throughput
    return m


class TestPanels:
    def test_panel_keys_cover_six_metrics(self):
        assert len(PANEL_KEYS) == 6


class TestFormatting:
    def test_metrics_table_contains_values(self):
        text = format_metrics_table([metrics("GT-TSCH", 99.0), metrics("Orchestra", 55.0)], title="t")
        assert "GT-TSCH" in text
        assert "Orchestra" in text
        assert "99.00" in text
        assert "55.00" in text

    def test_comparison_table_rows_match_sweep(self):
        results = {
            "GT-TSCH": [metrics("GT-TSCH", 99.0), metrics("GT-TSCH", 98.0)],
            "Orchestra": [metrics("Orchestra", 80.0), metrics("Orchestra", 50.0)],
        }
        text = format_comparison_table("load (ppm)", [30, 165], results, "pdr_percent", "PDR (%)")
        lines = text.splitlines()
        assert "PDR (%)" in lines[0]
        assert any(line.startswith("30") for line in lines)
        assert any(line.startswith("165") for line in lines)
        assert "50.00" in text

    def test_figure_report_contains_all_panels(self):
        results = {"GT-TSCH": [metrics("GT-TSCH", 99.0)]}
        text = format_figure_report("Figure 8", "load", [30], results)
        assert "Figure 8" in text
        for _, label in PANEL_KEYS:
            assert label in text
