"""Shared fixtures for the GT-TSCH reproduction test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.config import GtTschConfig
from repro.core.scheduler import GtTschScheduler
from repro.mac.tsch import TschConfig
from repro.net.network import Network
from repro.net.node import NodeConfig
from repro.net.topology import line_topology, star_topology
from repro.net.traffic import PeriodicTrafficGenerator
from repro.phy.propagation import UnitDiskLossyEdgeModel
from repro.rpl.engine import RplConfig
from repro.schedulers.orchestra import OrchestraConfig, OrchestraScheduler
from repro.sixtop.layer import SixPConfig


@pytest.fixture
def rng():
    """A deterministic random stream for unit tests."""
    return random.Random(1234)


@pytest.fixture
def fast_node_config():
    """Node configuration with short timers so tests converge quickly."""
    return NodeConfig(
        tsch=TschConfig(eb_period_s=1.0),
        rpl=RplConfig(dio_interval_min_s=2.0, dao_delay_s=0.5),
        sixp=SixPConfig(timeout_s=3.0, max_retries=2),
    )


@pytest.fixture
def gt_config():
    """A GT-TSCH configuration with a fast load-balancing period."""
    return GtTschConfig(load_balance_period_s=2.0)


def make_gt_network(
    topology=None,
    seed: int = 7,
    rate_ppm: float = 0.0,
    node_config: NodeConfig = None,
    gt_config: GtTschConfig = None,
    warm_start: bool = True,
):
    """Build a small GT-TSCH network for integration-style tests."""
    topology = topology or star_topology(3)
    node_config = node_config or NodeConfig(
        tsch=TschConfig(eb_period_s=1.0),
        rpl=RplConfig(dio_interval_min_s=2.0, dao_delay_s=0.5),
        sixp=SixPConfig(timeout_s=3.0, max_retries=2),
    )
    gt_config = gt_config or GtTschConfig(load_balance_period_s=2.0)
    network = Network(
        propagation=UnitDiskLossyEdgeModel(),
        seed=seed,
        default_node_config=node_config,
    )

    def traffic_factory(node_id, is_root):
        if is_root or rate_ppm <= 0:
            return None
        return PeriodicTrafficGenerator(rate_ppm=rate_ppm)

    network.build_from_topology(
        topology,
        scheduler_factory=lambda node_id, is_root: GtTschScheduler(gt_config),
        traffic_factory=traffic_factory,
        warm_start=warm_start,
    )
    return network


def make_orchestra_network(
    topology=None,
    seed: int = 7,
    rate_ppm: float = 0.0,
    node_config: NodeConfig = None,
    orchestra_config: OrchestraConfig = None,
    warm_start: bool = True,
):
    """Build a small Orchestra network for integration-style tests."""
    topology = topology or star_topology(3)
    node_config = node_config or NodeConfig(
        tsch=TschConfig(eb_period_s=1.0),
        rpl=RplConfig(dio_interval_min_s=2.0, dao_delay_s=0.5),
        sixp=SixPConfig(timeout_s=3.0),
    )
    orchestra_config = orchestra_config or OrchestraConfig()
    network = Network(
        propagation=UnitDiskLossyEdgeModel(),
        seed=seed,
        default_node_config=node_config,
    )

    def traffic_factory(node_id, is_root):
        if is_root or rate_ppm <= 0:
            return None
        return PeriodicTrafficGenerator(rate_ppm=rate_ppm)

    network.build_from_topology(
        topology,
        scheduler_factory=lambda node_id, is_root: OrchestraScheduler(orchestra_config),
        traffic_factory=traffic_factory,
        warm_start=warm_start,
    )
    return network


def make_registry_network(
    scheduler: str,
    topology=None,
    seed: int = 7,
    rate_ppm: float = 0.0,
    node_config: NodeConfig = None,
    contiki=None,
    warm_start: bool = True,
):
    """Build a small network for any registry-registered scheduler.

    Resolves the per-node factory exactly the way the scenarios do, so tests
    exercise the same code path as ``python -m repro.experiments``.
    """
    from repro.experiments.scenarios import ContikiConfig
    from repro.schedulers import registry

    topology = topology or star_topology(3)
    node_config = node_config or NodeConfig(
        tsch=TschConfig(eb_period_s=1.0),
        rpl=RplConfig(dio_interval_min_s=2.0, dao_delay_s=0.5),
        sixp=SixPConfig(timeout_s=3.0, max_retries=2),
    )
    contiki = contiki or ContikiConfig(load_balance_period_s=2.0)
    network = Network(
        propagation=UnitDiskLossyEdgeModel(),
        seed=seed,
        default_node_config=node_config,
    )

    def traffic_factory(node_id, is_root):
        if is_root or rate_ppm <= 0:
            return None
        return PeriodicTrafficGenerator(rate_ppm=rate_ppm)

    network.build_from_topology(
        topology,
        scheduler_factory=registry.resolve(scheduler)(contiki),
        traffic_factory=traffic_factory,
        warm_start=warm_start,
    )
    return network


@pytest.fixture
def gt_star_network():
    """A 4-node (root + 3 leaves) GT-TSCH network."""
    return make_gt_network(star_topology(3))


@pytest.fixture
def gt_line_network():
    """A 4-node chain GT-TSCH network (3 hops)."""
    return make_gt_network(line_topology(4, spacing=25.0))


@pytest.fixture
def orchestra_star_network():
    return make_orchestra_network(star_topology(3))
