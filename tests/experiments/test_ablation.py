"""Tests for the ablation runners (fast, reduced configurations)."""

from repro.experiments.ablation import (
    run_ewma_ablation,
    run_shared_cell_ablation,
    run_weight_ablation,
)
from repro.metrics.collector import NetworkMetrics

FAST = dict(rate_ppm=60.0, seed=2, measurement_s=8.0, warmup_s=12.0)


class TestWeightAblation:
    def test_returns_metrics_per_weight_set(self):
        results = run_weight_ablation(weight_sets=((8.0, 1.0, 4.0), (2.0, 1.0, 1.0)), **FAST)
        assert set(results) == {(8.0, 1.0, 4.0), (2.0, 1.0, 1.0)}
        assert all(isinstance(m, NetworkMetrics) for m in results.values())
        assert all(m.generated > 0 for m in results.values())


class TestEwmaAblation:
    def test_returns_metrics_per_zeta(self):
        results = run_ewma_ablation(zetas=(0.0, 0.9), **FAST)
        assert set(results) == {0.0, 0.9}
        assert all(m.scheduler == "GT-TSCH" for m in results.values())


class TestLoadBalancePeriodAblation:
    def test_returns_metrics_per_period(self):
        results = run_shared_cell_ablation(load_balance_periods=(2.0, 8.0), **FAST)
        assert set(results) == {2.0, 8.0}
        assert all(0.0 <= m.pdr_percent <= 100.0 for m in results.values())
