"""Tests for the parallel experiment engine: parity, caching, CLI."""

import csv
import json
import logging
import os
import pickle
from dataclasses import replace

import pytest

from repro.experiments.__main__ import main as experiments_cli
from repro.experiments.parallel import (
    ResultCache,
    run_scenario,
    run_scenarios,
    scenario_fingerprint,
)
from repro.experiments.runner import run_figure8
from repro.experiments.scenarios import GT_TSCH, ORCHESTRA, traffic_load_scenario
from repro.metrics.aggregate import MetricsAggregate

#: Short durations so the whole engine is exercised quickly.
FAST = dict(measurement_s=5.0, warmup_s=8.0)


def fast_scenario(rate_ppm=120.0, scheduler=GT_TSCH, seed=1):
    return traffic_load_scenario(
        rate_ppm=rate_ppm, scheduler=scheduler, seed=seed, **FAST
    )


class TestFingerprint:
    def test_stable_for_equal_scenarios(self):
        assert scenario_fingerprint(fast_scenario()) == scenario_fingerprint(
            fast_scenario()
        )

    def test_sensitive_to_every_knob(self):
        base = scenario_fingerprint(fast_scenario())
        assert scenario_fingerprint(fast_scenario(seed=2)) != base
        assert scenario_fingerprint(fast_scenario(rate_ppm=60.0)) != base
        assert scenario_fingerprint(fast_scenario(scheduler=ORCHESTRA)) != base
        longer = replace(fast_scenario(), measurement_s=6.0)
        assert scenario_fingerprint(longer) != base

    def test_rejects_objects_with_address_based_repr(self):
        class Opaque:
            pass

        scenario = replace(fast_scenario(), propagation=Opaque())
        with pytest.raises(TypeError, match="value-based"):
            scenario_fingerprint(scenario)


class TestResultCache:
    def test_second_run_hits_without_simulating(self, tmp_path, monkeypatch):
        cache = ResultCache(root=str(tmp_path))
        scenario = fast_scenario()
        first = run_scenarios([scenario], cache=cache)
        assert (cache.hits, cache.misses) == (0, 1)

        # A fresh cache object on the same root must serve the result without
        # ever building a network.
        reread = ResultCache(root=str(tmp_path))
        monkeypatch.setattr(
            "repro.experiments.parallel.run_scenario",
            lambda scenario: pytest.fail("cache miss: scenario was re-simulated"),
        )
        second = run_scenarios([scenario], cache=reread)
        assert reread.hits == 1
        assert second[0].as_dict() == first[0].as_dict()

    def test_changed_scenario_invalidates(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        run_scenarios([fast_scenario()], cache=cache)
        run_scenarios([fast_scenario(seed=2)], cache=cache)
        assert cache.hits == 0
        assert cache.misses == 2

    def test_cache_true_uses_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        run_scenarios([fast_scenario()], cache=True)
        assert list((tmp_path / "env-cache").glob("*.pkl"))


class TestCorruptCache:
    """A corrupt cache entry is a miss: logged, recomputed, overwritten."""

    def test_garbage_entry_recomputed_and_overwritten(self, tmp_path, caplog):
        cache = ResultCache(root=str(tmp_path))
        scenario = fast_scenario()
        first = run_scenarios([scenario], cache=cache)
        path = cache._path(scenario)
        with open(path, "wb") as handle:
            handle.write(b"this is not a pickle")

        fresh = ResultCache(root=str(tmp_path))
        with caplog.at_level(logging.WARNING, logger="repro.experiments.parallel"):
            again = run_scenarios([scenario], cache=fresh)
        assert (fresh.hits, fresh.misses, fresh.corrupt) == (0, 1, 1)
        assert "corrupt" in caplog.text
        assert again[0].as_dict() == first[0].as_dict()
        # The recomputation overwrote the garbage: a third lookup hits.
        healed = ResultCache(root=str(tmp_path))
        assert healed.get(scenario).as_dict() == first[0].as_dict()
        assert (healed.hits, healed.corrupt) == (1, 0)

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        scenario = fast_scenario()
        run_scenarios([scenario], cache=cache)
        path = cache._path(scenario)
        payload = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(payload[: len(payload) // 2])
        fresh = ResultCache(root=str(tmp_path))
        assert fresh.get(scenario) is None
        assert fresh.corrupt == 1

    def test_wrong_payload_type_is_a_miss(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        scenario = fast_scenario()
        os.makedirs(cache.root, exist_ok=True)
        with open(cache._path(scenario), "wb") as handle:
            pickle.dump({"not": "metrics"}, handle)
        assert cache.get(scenario) is None
        assert (cache.misses, cache.corrupt) == (1, 1)

    def test_missing_file_is_a_silent_miss(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        assert cache.get(fast_scenario()) is None
        assert (cache.misses, cache.corrupt) == (1, 0)


class TestWorkerCrashSurvival:
    """The persistent pool survives one worker death and bounded cell errors.

    The pool uses the ``fork`` start method on Linux, so monkeypatching
    ``run_scenario`` in the parent *before* the pool is (re)built patches
    the workers too -- each test tears the pool down first and after.
    """

    @pytest.fixture(autouse=True)
    def fresh_pool(self):
        from repro.experiments import parallel as engine

        engine.shutdown_pool()
        yield
        engine.shutdown_pool()

    @staticmethod
    def _fake_metrics(seed):
        from repro.metrics.collector import NetworkMetrics

        metrics = NetworkMetrics()
        metrics.generated = seed
        return metrics

    def test_worker_death_rebuilds_pool_and_resubmits(self, tmp_path, monkeypatch):
        from repro.experiments import parallel as engine

        marker = tmp_path / "crashed-once"

        def flaky(scenario):
            if scenario.seed == 2 and not marker.exists():
                marker.write_text("crashed")
                os._exit(1)  # hard worker death, no exception to catch
            return TestWorkerCrashSurvival._fake_metrics(scenario.seed)

        monkeypatch.setattr(engine, "run_scenario", flaky)
        scenarios = [fast_scenario(seed=seed) for seed in (1, 2, 3)]
        results = engine.run_scenarios(scenarios, jobs=2)
        assert [metrics.generated for metrics in results] == [1, 2, 3]
        assert marker.exists()

    def test_transient_cell_error_is_retried(self, tmp_path, monkeypatch):
        from repro.experiments import parallel as engine

        marker = tmp_path / "raised-once"

        def flaky(scenario):
            if scenario.seed == 2 and not marker.exists():
                marker.write_text("raised")
                raise ValueError("transient failure")
            return TestWorkerCrashSurvival._fake_metrics(scenario.seed)

        monkeypatch.setattr(engine, "run_scenario", flaky)
        scenarios = [fast_scenario(seed=seed) for seed in (1, 2, 3)]
        results = engine.run_scenarios(scenarios, jobs=2)
        assert [metrics.generated for metrics in results] == [1, 2, 3]
        assert marker.exists()

    def test_permanent_cell_failure_names_the_cell(self, monkeypatch):
        from repro.experiments import parallel as engine

        def broken(scenario):
            if scenario.seed == 2:
                raise ValueError("always broken")
            return TestWorkerCrashSurvival._fake_metrics(scenario.seed)

        monkeypatch.setattr(engine, "run_scenario", broken)
        scenarios = [fast_scenario(seed=seed) for seed in (1, 2, 3)]
        with pytest.raises(RuntimeError) as excinfo:
            engine.run_scenarios(scenarios, jobs=2)
        message = str(excinfo.value)
        assert scenarios[1].name in message
        assert "always broken" in message

    def test_throwaway_pool_fails_fast_with_cell_name(self, monkeypatch):
        from repro.experiments import parallel as engine

        def broken(scenario):
            raise ValueError("boom")

        monkeypatch.setattr(engine, "run_scenario", broken)
        scenarios = [fast_scenario(seed=seed) for seed in (1, 2)]
        with pytest.raises(RuntimeError, match="failed in worker"):
            engine.run_scenarios(scenarios, jobs=2, persistent_pool=False)


class TestParallelParity:
    def test_run_scenarios_parallel_is_bit_identical(self):
        scenarios = [fast_scenario(seed=seed) for seed in (1, 2)]
        serial = run_scenarios(scenarios, jobs=1)
        parallel = run_scenarios(scenarios, jobs=2)
        for a, b in zip(serial, parallel):
            assert a.as_dict() == b.as_dict()
            assert a.per_node == b.per_node

    def test_persistent_pool_is_reused_and_bit_identical_to_fork(self):
        from repro.experiments import parallel as engine

        scenarios = [fast_scenario(seed=seed) for seed in (1, 2, 3)]
        forked = run_scenarios(scenarios, jobs=2, persistent_pool=False)
        warm_a = run_scenarios(scenarios, jobs=2, persistent_pool=True)
        pool = engine._POOL
        assert pool is not None
        warm_b = run_scenarios(scenarios, jobs=2, persistent_pool=True)
        # The second persistent call reused the same pool object.
        assert engine._POOL is pool
        for a, b, c in zip(forked, warm_a, warm_b):
            assert a.as_dict() == b.as_dict() == c.as_dict()
        engine.shutdown_pool()
        assert engine._POOL is None

    def test_pool_results_are_reassembled_in_input_order(self):
        """imap_unordered completion order must never leak into the output."""
        scenarios = [fast_scenario(seed=seed) for seed in (1, 2, 3, 4)]
        serial = run_scenarios(scenarios, jobs=1)
        pooled = run_scenarios(scenarios, jobs=4)
        assert [m.as_dict() for m in pooled] == [m.as_dict() for m in serial]

    def test_pool_path_still_fills_the_result_cache(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        scenarios = [fast_scenario(seed=seed) for seed in (1, 2)]
        run_scenarios(scenarios, jobs=2, cache=cache)
        rerun_cache = ResultCache(root=str(tmp_path))
        run_scenarios(scenarios, jobs=2, cache=rerun_cache)
        assert rerun_cache.hits == 2
        assert rerun_cache.misses == 0


class TestFreezeCache:
    def test_adopted_tables_equal_fresh_freeze(self):
        """The per-topology frozen-medium cache is bit-identical to freeze()."""
        from repro.experiments.parallel import _FREEZE_CACHE, _warm_freeze

        scenario = fast_scenario()
        _FREEZE_CACHE.clear()
        first = scenario.build_network()
        _warm_freeze(first, scenario)  # cold: computes and caches
        second = scenario.build_network()
        _warm_freeze(second, scenario)  # warm: adopts the snapshot
        assert second.medium.frozen
        fresh = scenario.build_network()
        fresh.medium.freeze()
        assert second.medium._prr_rows == fresh.medium._prr_rows
        assert second.medium._interf_rows == fresh.medium._interf_rows
        assert second.medium._audience == fresh.medium._audience

    def test_mismatched_snapshot_is_rejected(self):
        scenario = fast_scenario()
        network = scenario.build_network()
        network.medium.freeze()
        state = network.medium.export_frozen()
        state = dict(state, ids=[999])
        other = fast_scenario(seed=2).build_network()
        assert other.medium.adopt_frozen(state) is False
        assert not other.medium.frozen

    def test_same_topology_different_seed_shares_a_key(self):
        from repro.experiments.parallel import _freeze_key

        assert _freeze_key(fast_scenario(seed=1)) == _freeze_key(fast_scenario(seed=2))
        assert _freeze_key(fast_scenario(scheduler=ORCHESTRA)) == _freeze_key(
            fast_scenario()
        )

    def test_cache_stays_bounded(self):
        import repro.experiments.parallel as engine

        engine._FREEZE_CACHE.clear()
        for extra in range(engine._FREEZE_CACHE_MAX + 3):
            scenario = traffic_load_scenario(
                rate_ppm=120.0,
                scheduler=GT_TSCH,
                seed=1,
                nodes_per_dodag=3 + extra % 6,
                num_dodags=1 + extra // 6,
                **FAST,
            )
            network = scenario.build_network()
            engine._warm_freeze(network, scenario)
        assert len(engine._FREEZE_CACHE) <= engine._FREEZE_CACHE_MAX

    def test_figure_parallel_matches_serial_and_aggregates(self):
        kwargs = dict(
            rates_ppm=(60, 120), schedulers=(GT_TSCH,), seeds=(1, 2), **FAST
        )
        serial = run_figure8(jobs=1, **kwargs)
        parallel = run_figure8(jobs=2, **kwargs)
        assert serial.seeds == [1, 2]
        for point_serial, point_parallel in zip(
            serial.results[GT_TSCH], parallel.results[GT_TSCH]
        ):
            assert isinstance(point_serial, MetricsAggregate)
            assert point_serial.n == 2
            assert point_serial.as_dict() == point_parallel.as_dict()
            assert [run.as_dict() for run in point_serial.runs] == [
                run.as_dict() for run in point_parallel.runs
            ]

    def test_single_seed_matches_direct_run(self):
        # The aggregate over one seed must reproduce run_scenario exactly,
        # so the new engine is transparent for the historical single-seed path.
        result = run_figure8(rates_ppm=(60,), schedulers=(GT_TSCH,), seeds=(1,), **FAST)
        direct = run_scenario(fast_scenario(rate_ppm=60.0))
        assert result.results[GT_TSCH][0].as_dict() == direct.as_dict()
        # Single-seed rows keep the historical single-run layout (no
        # dispersion columns), so archived CSVs stay diffable.
        assert "n_seeds" not in result.rows()[0]
        assert result.rows()[0]["generated"] == direct.generated

    def test_figure_cache_hits_every_cell_on_rerun(self, tmp_path):
        cache = ResultCache(root=str(tmp_path))
        kwargs = dict(rates_ppm=(60,), schedulers=(GT_TSCH,), seeds=(1, 2), **FAST)
        run_figure8(jobs=2, cache=cache, **kwargs)
        assert (cache.hits, cache.misses) == (0, 2)
        run_figure8(jobs=2, cache=cache, **kwargs)
        assert cache.hits == 2

    def test_rows_carry_dispersion_columns(self):
        result = run_figure8(rates_ppm=(60,), schedulers=(GT_TSCH,), seeds=(1, 2), **FAST)
        row = result.rows()[0]
        assert row["n_seeds"] == 2
        assert "pdr_percent_std" in row
        assert "pdr_percent_ci95" in row


class TestCli:
    def test_cli_runs_figure_and_exports(self, tmp_path):
        export_dir = tmp_path / "out"
        exit_code = experiments_cli(
            [
                "--figure", "8",
                "--values", "60",
                "--schedulers", GT_TSCH,
                "--seeds", "1", "2",
                "--jobs", "2",
                "--no-cache",
                "--measurement-s", "5",
                "--warmup-s", "8",
                "--export-dir", str(export_dir),
            ]
        )
        assert exit_code == 0
        with open(export_dir / "figure8.csv", newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 1
        assert rows[0]["scheduler"] == GT_TSCH
        assert float(rows[0]["n_seeds"]) == 2
        with open(export_dir / "figure8.json") as handle:
            document = json.load(handle)
        assert document["seeds"] == [1, 2]
        assert len(document["rows"]) == 1

    def test_cli_rejects_values_with_all_figures(self, capsys):
        assert experiments_cli(["--figure", "all", "--values", "60"]) == 2
