"""Tests for CSV/JSON export of figure results."""

import json

from repro.experiments.export import figure_to_csv, figure_to_json, load_figure_csv
from repro.experiments.runner import FigureResult
from repro.metrics.collector import NetworkMetrics


def small_figure():
    gt = NetworkMetrics(scheduler="GT-TSCH")
    gt.pdr_percent = 99.0
    gt.received_per_minute = 1800.0
    orchestra = NetworkMetrics(scheduler="Orchestra")
    orchestra.pdr_percent = 54.0
    orchestra.received_per_minute = 900.0
    return FigureResult(
        figure="Figure 8",
        sweep_label="load",
        sweep_values=[165],
        results={"GT-TSCH": [gt], "Orchestra": [orchestra]},
    )


class TestCsvExport:
    def test_roundtrip(self, tmp_path):
        path = figure_to_csv(small_figure(), str(tmp_path / "fig8.csv"))
        rows = load_figure_csv(path)
        assert len(rows) == 2
        by_scheduler = {row["scheduler"]: row for row in rows}
        assert by_scheduler["GT-TSCH"]["pdr_percent"] == 99.0
        assert by_scheduler["Orchestra"]["received_per_minute"] == 900.0
        assert by_scheduler["GT-TSCH"]["sweep"] == 165.0


class TestJsonExport:
    def test_document_structure(self, tmp_path):
        path = figure_to_json(small_figure(), str(tmp_path / "fig8.json"))
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["figure"] == "Figure 8"
        assert document["sweep_values"] == [165]
        assert set(document["schedulers"]) == {"GT-TSCH", "Orchestra"}
        assert len(document["rows"]) == 2
