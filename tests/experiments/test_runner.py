"""Tests for the figure runner (small, fast configurations)."""

from repro.experiments.runner import (
    FigureResult,
    run_figure10,
    run_figure8,
    run_figure9,
    run_scenario,
)
from repro.experiments.scenarios import GT_TSCH, ORCHESTRA, traffic_load_scenario
from repro.metrics.collector import NetworkMetrics

#: Short durations so the whole figure machinery is exercised quickly.
FAST = dict(measurement_s=10.0, warmup_s=15.0)


class TestRunScenario:
    def test_returns_metrics(self):
        scenario = traffic_load_scenario(rate_ppm=60, scheduler=GT_TSCH, **FAST)
        metrics = run_scenario(scenario)
        assert isinstance(metrics, NetworkMetrics)
        assert metrics.scheduler == GT_TSCH
        assert metrics.generated > 0


class TestFigureRunners:
    def test_figure8_structure(self):
        result = run_figure8(rates_ppm=(60,), schedulers=(GT_TSCH,), **FAST)
        assert isinstance(result, FigureResult)
        assert result.sweep_values == [60]
        assert set(result.results) == {GT_TSCH}
        assert len(result.results[GT_TSCH]) == 1
        assert result.series(GT_TSCH, "pdr_percent")[0] > 0

    def test_figure8_compares_both_schedulers(self):
        result = run_figure8(rates_ppm=(60,), schedulers=(GT_TSCH, ORCHESTRA), **FAST)
        assert set(result.results) == {GT_TSCH, ORCHESTRA}
        report = result.report()
        assert "GT-TSCH" in report and "Orchestra" in report
        assert "PDR (%)" in report

    def test_figure9_sweeps_dodag_size(self):
        result = run_figure9(dodag_sizes=(6,), schedulers=(GT_TSCH,), rate_ppm=60, **FAST)
        assert result.sweep_values == [6]
        assert "nodes per DODAG" in result.sweep_label

    def test_figure10_sweeps_slotframe_length(self):
        result = run_figure10(unicast_lengths=(8,), schedulers=(GT_TSCH,), rate_ppm=60, **FAST)
        assert result.sweep_values == [8]
        assert "slotframe" in result.sweep_label

    def test_rows_are_flat_dicts(self):
        result = run_figure8(rates_ppm=(60,), schedulers=(GT_TSCH,), **FAST)
        rows = result.rows()
        assert len(rows) == 1
        assert rows[0]["sweep"] == 60
        assert rows[0]["scheduler"] == GT_TSCH
        assert "pdr_percent" in rows[0]


class TestChurnRunner:
    def test_churn_reports_recovery_metrics_with_cis(self):
        from repro.experiments.runner import run_churn
        from repro.experiments.scenarios import MINIMAL

        result = run_churn(
            crash_counts=(1,),
            schedulers=(MINIMAL,),
            rate_ppm=60.0,
            seeds=(1, 2),
            measurement_s=14.0,
            warmup_s=8.0,
        )
        assert result.sweep_values == [1]
        assert "crashes" in result.sweep_label
        point = result.results[MINIMAL][0]
        assert point.n == 2
        row = result.rows()[0]
        # The recovery metrics flow through aggregate + rows with CIs.
        for key in (
            "time_to_reconverge_s",
            "pdr_under_churn_percent",
            "packets_lost_to_crash",
            "orphaned_cell_slots",
        ):
            assert key in row
            assert f"{key}_ci95" in row
        assert row["time_to_reconverge_s"] > 0.0

    def test_multi_seed_sweep_replays_the_same_fault_plan(self):
        from repro.experiments.scenarios import MINIMAL, churn_scenario

        first = churn_scenario(1, MINIMAL, seed=1)
        second = churn_scenario(1, MINIMAL, seed=2)
        assert first.faults == second.faults


class TestRanking:
    """``FigureResult.ranking`` orders schedulers by sweep-mean metric."""

    @staticmethod
    def _result():
        def point(pdr):
            return NetworkMetrics(scheduler="x", pdr_percent=pdr, delivered=int(pdr))

        return FigureResult(
            figure="churn",
            sweep_label="crashes",
            sweep_values=[1, 2],
            results={
                "A": [point(90), point(70)],  # mean 80
                "B": [point(95), point(93)],  # mean 94
                "C": [point(60), point(100)],  # mean 80, ties A
            },
        )

    def test_defaults_to_pdr_percent_descending(self):
        ranking = self._result().ranking()
        assert [name for name, _ in ranking] == ["B", "A", "C"]
        assert ranking[0][1] == 94.0
        # Ties keep the line-up order (stable sort): A before C.
        assert ranking[1][1] == ranking[2][1] == 80.0

    def test_ascending_and_custom_metric(self):
        ranking = self._result().ranking("delivered", descending=False)
        assert [name for name, _ in ranking] == ["A", "C", "B"]
