"""Tests for the experiment scenario definitions."""

import pytest

from repro.core.scheduler import GtTschScheduler
from repro.experiments.scenarios import (
    GT_TSCH,
    MINIMAL,
    ORCHESTRA,
    ContikiConfig,
    dodag_size_scenario,
    slotframe_scenario,
    traffic_load_scenario,
)
from repro.schedulers.minimal import MinimalScheduler
from repro.schedulers.orchestra import OrchestraScheduler


class TestContikiConfig:
    def test_table_ii_defaults(self):
        config = ContikiConfig()
        assert config.slot_duration_s == pytest.approx(0.015)
        assert config.hopping_sequence == (17, 23, 15, 25, 19, 11, 13, 21)
        assert config.eb_period_s == 2.0
        assert config.max_retries == 4
        assert config.gt_slotframe_length == 32

    def test_node_config_propagates_values(self):
        config = ContikiConfig(queue_capacity=12, max_retries=2)
        node_config = config.node_config()
        assert node_config.tsch.queue_capacity == 12
        assert node_config.tsch.max_retries == 2

    def test_gt_config_propagates_values(self):
        config = ContikiConfig(gt_slotframe_length=64, queue_capacity=10)
        gt = config.gt_tsch_config()
        assert gt.slotframe_length == 64
        assert gt.q_max == 10

    def test_orchestra_config_uses_unicast_length(self):
        config = ContikiConfig(orchestra_unicast_length=12)
        assert config.orchestra_config().unicast_slotframe_length == 12


class TestScenarioFactories:
    def test_fig8_scenario_topology(self):
        scenario = traffic_load_scenario(rate_ppm=120, scheduler=GT_TSCH)
        assert len(scenario.topology) == 14
        assert len(scenario.topology.roots()) == 2
        assert scenario.rate_ppm == 120

    def test_fig9_scenario_sizes(self):
        scenario = dodag_size_scenario(nodes_per_dodag=9, scheduler=ORCHESTRA)
        assert len(scenario.topology) == 18
        assert scenario.rate_ppm == 120.0

    def test_fig10_scenario_slotframe_ratio(self):
        """GT-TSCH slotframe = 4x the Orchestra unicast slotframe (paper rule)."""
        scenario = slotframe_scenario(unicast_slotframe_length=16, scheduler=GT_TSCH)
        assert scenario.contiki.orchestra_unicast_length == 16
        assert scenario.contiki.gt_slotframe_length == 64

    def test_unknown_scheduler_rejected(self):
        scenario = traffic_load_scenario(rate_ppm=30, scheduler="bogus")
        with pytest.raises(ValueError):
            scenario.build_network()

    def test_build_network_scheduler_types(self):
        for name, expected in (
            (GT_TSCH, GtTschScheduler),
            (ORCHESTRA, OrchestraScheduler),
            (MINIMAL, MinimalScheduler),
        ):
            scenario = traffic_load_scenario(rate_ppm=30, scheduler=name)
            network = scenario.build_network()
            assert isinstance(network.nodes[0].scheduler, expected)

    def test_roots_have_no_traffic_generator(self):
        scenario = traffic_load_scenario(rate_ppm=120, scheduler=GT_TSCH)
        network = scenario.build_network()
        assert network.nodes[0].traffic is None
        assert network.nodes[1].traffic is not None
        assert network.nodes[1].traffic.rate_ppm == 120

    def test_traffic_start_delay_within_warmup(self):
        scenario = traffic_load_scenario(rate_ppm=120, scheduler=GT_TSCH, warmup_s=30.0)
        network = scenario.build_network()
        assert network.nodes[1].traffic.start_delay_s <= 30.0

    def test_scenario_names_are_descriptive(self):
        assert "fig8" in traffic_load_scenario(30, GT_TSCH).name
        assert "fig9" in dodag_size_scenario(7, GT_TSCH).name
        assert "fig10" in slotframe_scenario(8, GT_TSCH).name
