"""Tests for the ``python -m repro.experiments`` command line."""

from __future__ import annotations

import os

from repro.experiments.__main__ import cache_main, main
from repro.experiments.parallel import ResultCache
from repro.experiments.scenarios import MINIMAL, traffic_load_scenario
from repro.metrics.collector import NetworkMetrics


def _tiny_args(extra=()):
    return [
        "--figure",
        "8",
        "--values",
        "30",
        "--schedulers",
        MINIMAL,
        "--measurement-s",
        "2",
        "--warmup-s",
        "2",
        "--no-cache",
        *extra,
    ]


class TestCacheSubcommand:
    def test_info_reports_entries_and_size(self, tmp_path, capsys):
        cache = ResultCache(root=str(tmp_path))
        scenario = traffic_load_scenario(rate_ppm=30, scheduler=MINIMAL)
        cache.put(scenario, NetworkMetrics(scheduler=MINIMAL))
        assert cache_main(["--info", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert str(tmp_path) in out
        assert "cache entries: 1" in out

    def test_clear_removes_entries(self, tmp_path, capsys):
        cache = ResultCache(root=str(tmp_path))
        scenario = traffic_load_scenario(rate_ppm=30, scheduler=MINIMAL)
        cache.put(scenario, NetworkMetrics(scheduler=MINIMAL))
        assert main(["cache", "--clear", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 1 entries" in capsys.readouterr().out
        assert cache.info()["entries"] == 0
        assert cache.get(scenario) is None

    def test_info_on_missing_directory(self, tmp_path, capsys):
        missing = os.path.join(str(tmp_path), "nope")
        assert cache_main(["--info", "--cache-dir", missing]) == 0
        assert "cache entries: 0" in capsys.readouterr().out


class TestProfileFlag:
    def test_profile_prints_cumulative_table(self, capsys):
        assert main(_tiny_args(["--profile"])) == 0
        out = capsys.readouterr().out
        assert "cumulative" in out
        assert "run_figure8" in out

    def test_plain_run_reports_slots_per_second(self, capsys):
        assert main(_tiny_args()) == 0
        out = capsys.readouterr().out
        assert "slots/s" in out


class TestScaleFigureExport:
    def test_scale_export_carries_six_metrics_with_seed_cis(self, tmp_path):
        """--figure scale exports the paper's metric series vs N, not just
        slots/s: per-N PDR / delay / duty-cycle / throughput columns plus
        cross-seed dispersion and the 6P-churn columns."""
        import csv

        assert (
            main(
                [
                    "--figure",
                    "scale",
                    "--values",
                    "20",
                    "30",
                    "--schedulers",
                    MINIMAL,
                    "--seeds",
                    "1",
                    "2",
                    "--measurement-s",
                    "3",
                    "--warmup-s",
                    "2",
                    "--no-cache",
                    "--export-dir",
                    str(tmp_path),
                    "--format",
                    "csv",
                ]
            )
            == 0
        )
        with open(os.path.join(str(tmp_path), "figurescale.csv")) as handle:
            rows = list(csv.DictReader(handle))
        assert {row["sweep"] for row in rows} == {"20", "30"}
        for column in (
            "pdr_percent",
            "end_to_end_delay_ms",
            "packet_loss_per_minute",
            "radio_duty_cycle_percent",
            "queue_loss_per_node",
            "received_per_minute",
            "sixp_cell_relocations",
            "sixp_relocations_per_lb_period",
            "pdr_percent_std",
            "pdr_percent_ci95",
            "n_seeds",
        ):
            assert column in rows[0], f"missing column {column}"

    def test_profile_prints_event_queue_stats(self, capsys):
        assert main(_tiny_args(["--profile"])) == 0
        out = capsys.readouterr().out
        assert "[event queue]" in out
        assert "[timer wheels]" in out


class TestFigureRegistry:
    def test_unknown_figure_id_lists_valid_choices(self, capsys):
        """argparse choices come from the FIGURES registry, so an unknown id
        errors out naming every valid figure instead of failing later."""
        import pytest

        with pytest.raises(SystemExit) as excinfo:
            main(["--figure", "bogus"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        for figure_id in ("8", "9", "10", "scale", "churn", "churn-dynamic", "join", "all"):
            assert f"'{figure_id}'" in err

    def test_churn_figure_prints_robustness_ranking(self, capsys):
        assert (
            main(
                [
                    "--figure",
                    "churn",
                    "--values",
                    "1",
                    "--schedulers",
                    MINIMAL,
                    "--measurement-s",
                    "14",
                    "--warmup-s",
                    "8",
                    "--no-cache",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "[figure churn] robustness ranking: 1. 6TiSCH-minimal (pdr " in out
