"""Skip-equivalence and unit tests for the slot-skipping simulation kernel.

The kernel's contract is *bit-identical metrics*: for any scenario, running
with ``fast=True`` (active-offset index + bulk-accounted idle/listen runs)
must finalize exactly the same :class:`NetworkMetrics` as the naive
slot-by-slot reference loop (``fast=False``), for every scheduler, because
skipped slots provably fire no callbacks, draw no random numbers and touch
nothing but integer duty-cycle counters.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.scenarios import (
    DEBRAS,
    GT_TSCH,
    MINIMAL,
    MSF,
    ORCHESTRA,
    OTF,
    churn_scenario,
    traffic_load_scenario,
)
from repro.schedulers import registry
from repro.phy.dynamic import default_drift_policy
from repro.mac.cell import Cell, CellOption
from repro.mac.tsch import next_offset_occurrence
from repro.net.network import Network
from repro.schedulers.minimal import MinimalScheduler, MinimalSchedulerConfig


def _run(scheduler: str, seed: int, fast: bool):
    scenario = traffic_load_scenario(
        rate_ppm=60.0,
        scheduler=scheduler,
        seed=seed,
        measurement_s=12.0,
        warmup_s=8.0,
    )
    network = scenario.build_network()
    network.fast = fast
    metrics = network.run_experiment(
        warmup_s=scenario.warmup_s,
        measurement_s=scenario.measurement_s,
        drain_s=3.0,
        scheduler_name=scheduler,
    )
    return network, metrics


#: Every registered scheduler must satisfy the bit-identity contract, so the
#: headline equivalence proof parameterizes over the registry itself: a newly
#: registered scheduler is covered without touching this file.
ALL_REGISTERED = tuple(registry.available())


class TestSkipEquivalence:
    """Fast kernel vs naive loop: finalized metrics must be bit-identical."""

    @pytest.mark.parametrize("scheduler", ALL_REGISTERED)
    @pytest.mark.parametrize("seed", [1, 2])
    def test_metrics_bit_identical(self, scheduler, seed):
        naive_net, naive = _run(scheduler, seed, fast=False)
        fast_net, fast = _run(scheduler, seed, fast=True)
        assert dataclasses.asdict(fast) == dataclasses.asdict(naive)
        # The clocks, MAC counters and medium statistics agree as well.
        assert fast_net.clock.asn == naive_net.clock.asn
        assert fast_net.medium.total_transmissions == naive_net.medium.total_transmissions
        assert fast_net.medium.total_collisions == naive_net.medium.total_collisions
        for node_id in naive_net.nodes:
            naive_stats = naive_net.nodes[node_id].tsch.stats
            fast_stats = fast_net.nodes[node_id].tsch.stats
            assert dataclasses.asdict(fast_stats) == dataclasses.asdict(naive_stats)

    def test_fast_flag_defaults_on(self):
        assert Network().fast is True
        assert Network(fast=False).fast is False


#: Explicit ids so CI can select a cheap subset with ``-k`` (e.g.
#: ``-k "gt-s1 or orchestra-s1"`` for the churn-equivalence smoke job).
_FAULT_CASES = [
    pytest.param(MINIMAL, 1, id="minimal-s1"),
    pytest.param(MINIMAL, 2, id="minimal-s2"),
    pytest.param(ORCHESTRA, 1, id="orchestra-s1"),
    pytest.param(ORCHESTRA, 2, id="orchestra-s2"),
    pytest.param(GT_TSCH, 1, id="gt-s1"),
    pytest.param(GT_TSCH, 2, id="gt-s2"),
    pytest.param(MSF, 1, id="msf-s1"),
    pytest.param(MSF, 2, id="msf-s2"),
    pytest.param(DEBRAS, 1, id="debras-s1"),
    pytest.param(OTF, 1, id="otf-s1"),
]


class TestFaultEquivalence:
    """Fault injection composes with the fast kernel bit-identically.

    Every injected fault (node crash, warm rejoin, link-degradation epoch,
    parent loss) mutates schedules, queues and the frozen medium mid-run;
    each mutation routes through the kernel's settlement barriers, so
    ``fast=True`` must still finalize exactly the reference loop's metrics.
    The plan exercises all four fault classes inside the measurement window.
    """

    def _run(self, scheduler: str, seed: int, fast: bool):
        scenario = churn_scenario(
            num_crashes=1,
            scheduler=scheduler,
            seed=seed,
            rate_ppm=60.0,
            measurement_s=14.0,
            warmup_s=8.0,
        )
        # The short windows must still contain every fault class.
        plan = scenario.faults
        assert plan is not None
        assert len(plan.crashes) >= 1
        assert len(plan.rejoins) >= 1
        assert len(plan.link_epochs) >= 1
        assert len(plan.parent_losses) >= 1
        network = scenario.build_network()
        network.fast = fast
        metrics = network.run_experiment(
            warmup_s=scenario.warmup_s,
            measurement_s=scenario.measurement_s,
            drain_s=3.0,
            scheduler_name=scheduler,
        )
        return network, metrics

    @pytest.mark.parametrize("scheduler,seed", _FAULT_CASES)
    def test_metrics_bit_identical_under_faults(self, scheduler, seed):
        naive_net, naive = self._run(scheduler, seed, fast=False)
        fast_net, fast = self._run(scheduler, seed, fast=True)
        assert dataclasses.asdict(fast) == dataclasses.asdict(naive)
        assert fast_net.clock.asn == naive_net.clock.asn
        assert fast_net.medium.total_transmissions == naive_net.medium.total_transmissions
        assert fast_net.medium.total_collisions == naive_net.medium.total_collisions
        for node_id in naive_net.nodes:
            assert dataclasses.asdict(fast_net.nodes[node_id].tsch.stats) == (
                dataclasses.asdict(naive_net.nodes[node_id].tsch.stats)
            )
        # The run actually injected the whole plan and measured recovery.
        assert naive.faults_injected == 4
        assert naive.time_to_reconverge_s > 0.0
        # The epoch closed: the medium is back to its pristine tables.
        assert naive_net.medium.prr_scale == 1.0
        assert fast_net.medium.prr_scale == 1.0


#: Explicit ids so CI can select a cheap subset with ``-k`` (e.g.
#: ``-k "dyn-gt-s1 or dyn-orchestra-s1"`` for the dynamic-equivalence leg).
_DYNAMIC_CASES = [
    pytest.param(MINIMAL, 1, id="dyn-minimal-s1"),
    pytest.param(MINIMAL, 2, id="dyn-minimal-s2"),
    pytest.param(ORCHESTRA, 1, id="dyn-orchestra-s1"),
    pytest.param(ORCHESTRA, 2, id="dyn-orchestra-s2"),
    pytest.param(GT_TSCH, 1, id="dyn-gt-s1"),
    pytest.param(GT_TSCH, 2, id="dyn-gt-s2"),
    pytest.param(MSF, 1, id="dyn-msf-s1"),
    pytest.param(DEBRAS, 1, id="dyn-debras-s1"),
    pytest.param(OTF, 1, id="dyn-otf-s1"),
]


class TestDynamicEquivalence:
    """The full dynamic-network stack composes with the fast kernel bit-identically.

    Everything PR 9 adds runs at once: every non-root node boots
    unsynchronised (cold-start EB scan -> sync -> RPL join), one node is
    absent from slot 0 and powers on mid-window (arrival churn), and a
    seeded three-epoch per-link PRR drift schedule perturbs the medium on
    top of the legacy crash/rejoin/degrade/parent-loss plan.  Scan windows
    settle in bulk, arrivals pre-mark state before slot 0, and epoch
    transitions re-scale the frozen tables -- each through the kernel's
    settlement barriers, so ``fast=True`` must still finalize exactly the
    reference loop's metrics.
    """

    def _run(self, scheduler: str, seed: int, fast: bool):
        # Three drift epochs inside the short window; the restore barrier
        # fires at 16.8s, before the measurement window closes at 22s.
        drift = default_drift_policy(
            seed=seed,
            start_s=10.8,
            epoch_s=2.0,
            num_epochs=3,
        )
        scenario = churn_scenario(
            num_crashes=1,
            scheduler=scheduler,
            seed=seed,
            rate_ppm=60.0,
            measurement_s=14.0,
            warmup_s=8.0,
            num_arrivals=1,
            link_drift=drift,
            cold_start=True,
        )
        plan = scenario.faults
        assert plan is not None
        assert len(plan.crashes) >= 1
        assert len(plan.rejoins) >= 1
        assert len(plan.link_epochs) >= 1
        assert len(plan.parent_losses) >= 1
        assert len(plan.arrivals) == 1
        network = scenario.build_network()
        network.fast = fast
        metrics = network.run_experiment(
            warmup_s=scenario.warmup_s,
            measurement_s=scenario.measurement_s,
            drain_s=3.0,
            scheduler_name=scheduler,
        )
        return network, metrics

    @pytest.mark.parametrize("scheduler,seed", _DYNAMIC_CASES)
    def test_metrics_bit_identical_under_dynamics(self, scheduler, seed):
        naive_net, naive = self._run(scheduler, seed, fast=False)
        fast_net, fast = self._run(scheduler, seed, fast=True)
        assert dataclasses.asdict(fast) == dataclasses.asdict(naive)
        assert fast_net.clock.asn == naive_net.clock.asn
        assert fast_net.medium.total_transmissions == naive_net.medium.total_transmissions
        assert fast_net.medium.total_collisions == naive_net.medium.total_collisions
        for node_id in naive_net.nodes:
            assert dataclasses.asdict(fast_net.nodes[node_id].tsch.stats) == (
                dataclasses.asdict(naive_net.nodes[node_id].tsch.stats)
            )
        # The whole dynamic plan fired: 4 legacy faults + 1 arrival + 3
        # link-drift epoch transitions.
        assert naive.faults_injected == 8
        # The drift restore barrier fired: pristine per-link tables again.
        assert not naive_net.medium.in_link_epoch
        assert not fast_net.medium.in_link_epoch
        assert naive_net.medium.prr_scale == 1.0
        assert fast_net.medium.prr_scale == 1.0


class TestNextActiveAsn:
    def _network(self):
        network = Network()
        for node_id in (1, 2):
            network.add_node(
                node_id,
                position=(float(node_id), 0.0),
                scheduler=MinimalScheduler(MinimalSchedulerConfig()),
                is_root=node_id == 1,
            )
        return network

    def test_no_cells_means_no_active_asn(self):
        network = self._network()
        assert network.next_active_asn(0) is None

    def test_union_of_offsets_modulo_length(self):
        network = self._network()
        engine = network.nodes[1].tsch
        slotframe = engine.add_slotframe(0, 10)
        slotframe.add_cell(Cell(slot_offset=3, channel_offset=0, options=CellOption.RX))
        assert network.next_active_asn(0) == 3
        assert network.next_active_asn(3) == 3
        assert network.next_active_asn(4) == 13
        assert network.next_active_asn(23) == 23

    def test_index_invalidated_on_cell_add_and_remove(self):
        network = self._network()
        engine = network.nodes[2].tsch
        slotframe = engine.add_slotframe(0, 8)
        cell = slotframe.add_cell(
            Cell(slot_offset=5, channel_offset=0, options=CellOption.TX)
        )
        assert network.next_active_asn(0) == 5
        slotframe.add_cell(Cell(slot_offset=2, channel_offset=0, options=CellOption.RX))
        assert network.next_active_asn(0) == 2
        slotframe.remove_cell(cell)
        assert network.next_active_asn(3) == 10  # only offset 2 mod 8 remains

    def test_multiple_slotframe_lengths(self):
        network = self._network()
        first = network.nodes[1].tsch.add_slotframe(0, 7)
        first.add_cell(Cell(slot_offset=6, channel_offset=0, options=CellOption.RX))
        second = network.nodes[2].tsch.add_slotframe(0, 5)
        second.add_cell(Cell(slot_offset=4, channel_offset=0, options=CellOption.TX))
        # offsets: asn % 7 == 6 -> 6, 13, 20...; asn % 5 == 4 -> 4, 9, 14...
        assert network.next_active_asn(0) == 4
        assert network.next_active_asn(5) == 6
        assert network.next_active_asn(7) == 9


class TestNextOffsetOccurrence:
    def test_empty_offsets(self):
        assert next_offset_occurrence(10, 8, []) is None

    def test_same_slot_hit(self):
        assert next_offset_occurrence(16, 8, [0, 3]) == 16

    def test_wraps_to_next_frame(self):
        assert next_offset_occurrence(15, 8, [3, 6]) == 19

    def test_bisects_within_frame(self):
        assert next_offset_occurrence(17, 8, [0, 3, 6]) == 19


class TestReferenceLoop:
    def test_run_slots_naive_equals_manual_reference_stepping(self):
        """``run_slots(fast=False)`` is exactly N reference steps."""
        def build():
            return traffic_load_scenario(
                rate_ppm=60.0, scheduler=MINIMAL, seed=3, measurement_s=12.0, warmup_s=8.0
            ).build_network()

        looped = build()
        looped.run_slots(400, fast=False)
        manual = build()
        manual.start()
        for node in manual.nodes.values():
            node.tsch.cache_enabled = False
        manual.medium.fast_paths = False
        for _ in range(400):
            manual.step_slot_reference()
        assert manual.clock.asn == looped.clock.asn == 400
        for node_id in looped.nodes:
            looped_meter = looped.nodes[node_id].tsch.duty_cycle
            manual_meter = manual.nodes[node_id].tsch.duty_cycle
            assert manual_meter.snapshot() == looped_meter.snapshot()

    def test_fast_and_naive_runs_agree_slot_for_slot(self):
        """Duty-cycle totals agree after an arbitrary run length."""
        def build():
            return traffic_load_scenario(
                rate_ppm=60.0, scheduler=GT_TSCH, seed=4, measurement_s=12.0, warmup_s=8.0
            ).build_network()

        fast_net = build()
        fast_net.run_slots(777, fast=True)
        naive_net = build()
        naive_net.run_slots(777, fast=False)
        assert fast_net.clock.asn == naive_net.clock.asn == 777
        for node_id in naive_net.nodes:
            fast_meter = fast_net.nodes[node_id].tsch.duty_cycle
            naive_meter = naive_net.nodes[node_id].tsch.duty_cycle
            assert fast_meter.snapshot() == naive_meter.snapshot()


class TestParticipantDispatch:
    """The participant-indexed, transmitter-centric dispatch kernel."""

    @pytest.mark.parametrize("scheduler", ALL_REGISTERED)
    @pytest.mark.parametrize("seed", [1, 2])
    def test_scale_scenario_bit_identical(self, scheduler, seed):
        """Equivalence proof on the multi-DODAG scaling workload."""
        from repro.experiments.scenarios import scale_scenario

        def run(fast):
            scenario = scale_scenario(
                num_nodes=30,
                scheduler=scheduler,
                seed=seed,
                measurement_s=6.0,
                warmup_s=4.0,
            )
            network = scenario.build_network()
            network.fast = fast
            metrics = network.run_experiment(
                warmup_s=4.0, measurement_s=6.0, drain_s=2.0, scheduler_name=scheduler
            )
            return network, metrics

        fast_net, fast = run(True)
        naive_net, naive = run(False)
        assert dataclasses.asdict(fast) == dataclasses.asdict(naive)
        assert fast_net.clock.asn == naive_net.clock.asn
        assert fast_net.medium.total_transmissions == naive_net.medium.total_transmissions
        assert fast_net.medium.total_collisions == naive_net.medium.total_collisions
        for node_id in naive_net.nodes:
            assert dataclasses.asdict(fast_net.nodes[node_id].tsch.stats) == (
                dataclasses.asdict(naive_net.nodes[node_id].tsch.stats)
            )
        # The dispatch kernel visits a strict subset of the slots.
        assert 0 < fast_net.stepped_slots < fast_net.clock.asn

    def test_backlog_index_tracks_queue_contents(self):
        scenario = traffic_load_scenario(
            rate_ppm=0.0, scheduler=MINIMAL, seed=5, measurement_s=5.0, warmup_s=5.0
        )
        network = scenario.build_network()
        network.start()
        node = network.nodes[1]
        assert node.node_id not in network._backlogged
        from repro.net.packet import make_data_packet

        packet = make_data_packet(1, 0, created_at=0.0)
        packet.link_destination = 0
        node.tsch.enqueue(packet)
        assert network._backlogged[node.node_id] is node
        node.tsch._dequeue(packet)
        assert node.node_id not in network._backlogged

    def test_collect_transmitters_names_only_matching_nodes(self):
        from repro.mac.cell import Cell as MacCell, CellOption as MacCellOption
        from repro.net.packet import make_data_packet
        from repro.schedulers.minimal import MinimalScheduler, MinimalSchedulerConfig

        network = Network()
        for node_id in (1, 2, 3):
            network.add_node(
                node_id,
                position=(float(node_id), 0.0),
                scheduler=MinimalScheduler(MinimalSchedulerConfig()),
                is_root=node_id == 1,
            )
        # Node 2 can send to node 1 at offset 4 of 8; node 3 has no TX cell.
        frame = network.nodes[2].tsch.add_slotframe(0, 8)
        frame.add_cell(
            MacCell(slot_offset=4, channel_offset=0, options=MacCellOption.TX, neighbor=1)
        )
        packet = make_data_packet(2, 1, created_at=0.0)
        packet.link_destination = 1
        network.nodes[2].tsch.enqueue(packet)
        other = make_data_packet(3, 1, created_at=0.0)
        other.link_destination = 1
        network.nodes[3].tsch.enqueue(other)
        assert network._collect_transmitters(4) == [network.nodes[2]]
        # Popped entries are recomputed on the next query.
        assert network._next_risky_asn(5, 100) == 12
        assert network._collect_transmitters(5) == []

    def test_idle_listen_channel_offset_matches_plan(self):
        """The audience pass's per-residue listen table equals plan_slot."""
        scenario = traffic_load_scenario(
            rate_ppm=0.0, scheduler=ORCHESTRA, seed=6, measurement_s=5.0, warmup_s=5.0
        )
        network = scenario.build_network()
        network.start()
        for node in network.nodes.values():
            engine = node.tsch
            for asn in range(120):
                plan = engine.plan_slot(asn)
                offset = engine.idle_listen_channel_offset(asn)
                if plan.action == "rx":
                    assert offset is not None
                    assert engine.hopping.channel_for(asn, offset) == plan.channel
                else:
                    assert offset is None

    def test_deferred_duty_cycle_settles_on_schedule_change(self):
        """A mid-run schedule mutation settles the pre-mutation window, so
        idle-listen accounting never mixes two schedules."""
        from repro.mac.cell import Cell as MacCell, CellOption as MacCellOption
        from repro.schedulers.minimal import MinimalScheduler, MinimalSchedulerConfig

        network = Network()
        node = network.add_node(
            1,
            position=(0.0, 0.0),
            scheduler=MinimalScheduler(MinimalSchedulerConfig()),
            is_root=True,
        )
        engine = node.tsch
        frame = engine.add_slotframe(5, 4)
        cell = frame.add_cell(
            MacCell(slot_offset=1, channel_offset=0, options=MacCellOption.RX)
        )
        network.run_slots(8)
        # Removing the RX cell settles [0, 8) under the old profile first.
        frame.remove_cell(cell)
        meter = engine.duty_cycle
        listened_before = meter.idle_listen_slots
        network.run_slots(8)
        assert engine.duty_accounted_asn == 16
        # The removed cell no longer listens; only the minimal scheduler's
        # own shared cell (offset 0 mod 7, i.e. ASN 14) does in [8, 16).
        assert meter.idle_listen_slots == listened_before + 1
        assert meter.total_slots == 16


class TestContentionPruning:
    """Shared-cell CSMA pruning: bulk-settled back-off vs per-slot countdown."""

    @pytest.mark.parametrize("scheduler", [MINIMAL, ORCHESTRA, GT_TSCH])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_pruned_and_unpruned_kernels_bit_identical(self, scheduler, seed):
        """Fig. 8 load (heavy shared-cell contention), pruning on vs off."""

        def run(pruning):
            scenario = traffic_load_scenario(
                rate_ppm=60.0,
                scheduler=scheduler,
                seed=seed,
                measurement_s=8.0,
                warmup_s=6.0,
            )
            network = scenario.build_network()
            network.csma_pruning = pruning
            metrics = network.run_experiment(
                warmup_s=6.0, measurement_s=8.0, drain_s=2.0, scheduler_name=scheduler
            )
            return network, metrics

        pruned_net, pruned = run(True)
        naive_net, naive = run(False)
        assert dataclasses.asdict(pruned) == dataclasses.asdict(naive)
        assert pruned_net.clock.asn == naive_net.clock.asn
        assert pruned_net.medium.total_transmissions == naive_net.medium.total_transmissions
        assert pruned_net.medium.total_collisions == naive_net.medium.total_collisions
        for node_id in naive_net.nodes:
            assert dataclasses.asdict(pruned_net.nodes[node_id].tsch.stats) == (
                dataclasses.asdict(naive_net.nodes[node_id].tsch.stats)
            )

    def _blocked_minimal_node(self):
        """A two-node minimal network with node 2 backlogged and in back-off."""
        from repro.net.packet import make_data_packet

        network = Network()
        for node_id in (1, 2):
            network.add_node(
                node_id,
                position=(float(node_id), 0.0),
                scheduler=MinimalScheduler(MinimalSchedulerConfig()),
                is_root=node_id == 1,
            )
        network.start()
        node = network.nodes[2]
        packet = make_data_packet(2, 1, created_at=0.0)
        packet.link_destination = 1
        node.tsch.enqueue(packet)
        return network, node

    def test_deferral_names_the_post_backoff_occurrence(self):
        network, node = self._blocked_minimal_node()
        engine = node.tsch
        engine.csma._state(1).window = 3
        # Shared cell at offset 0 mod 7: three losing passes at 7, 14, 21,
        # transmit at 28 (ASN 0 already passed nothing -- cursor starts at 1).
        assert engine.plan_csma_deferral(1) == 28
        assert engine._csma_deferral is not None
        # The armed record is returned as-is until something invalidates it.
        assert engine.plan_csma_deferral(5) == 28

    def test_settle_credits_exactly_the_elapsed_passes(self):
        network, node = self._blocked_minimal_node()
        engine = node.tsch
        engine.csma._state(1).window = 3
        engine.plan_csma_deferral(1)
        engine.settle_csma(15)  # passes at 7 and 14 elapsed
        assert engine.csma.window(1) == 1
        assert engine._csma_deferral is None

    def test_plan_slot_settles_before_scanning(self):
        network, node = self._blocked_minimal_node()
        engine = node.tsch
        engine.csma._state(1).window = 3
        engine.plan_csma_deferral(1)
        # Planning the slot at ASN 14 credits the pass at 7 first, then the
        # scan itself counts this slot's pass down: window 3 -> 2 -> 1.
        plan = engine.plan_slot(14)
        assert plan.action != "tx"
        assert engine.csma.window(1) == 1

    def test_broadcast_pending_disables_deferral(self):
        from repro.net.packet import BROADCAST_ADDRESS, Packet, PacketType

        network, node = self._blocked_minimal_node()
        engine = node.tsch
        engine.csma._state(1).window = 3
        eb = Packet(
            ptype=PacketType.EB,
            source=2,
            destination=BROADCAST_ADDRESS,
            link_source=2,
            link_destination=BROADCAST_ADDRESS,
        )
        engine.enqueue(eb)
        # A broadcast bypasses CSMA on the shared cell, so the node may
        # transmit at the very next occurrence: no deferral.
        assert engine.plan_csma_deferral(1) is None

    def test_quiet_destination_disables_deferral(self):
        network, node = self._blocked_minimal_node()
        engine = node.tsch
        engine.csma._state(1).window = 3
        engine.quiet_shared_neighbors.add(1)
        assert engine.plan_csma_deferral(1) is None

    def test_quiet_mutation_settles_an_armed_deferral(self):
        network, node = self._blocked_minimal_node()
        engine = node.tsch
        engine.csma._state(1).window = 3
        engine.plan_csma_deferral(1)
        network.clock.asn = 15
        engine.quiet_shared_neighbors.add(1)
        # The mutation reported through the queue hook settled passes 7, 14.
        assert engine._csma_deferral is None
        assert engine.csma.window(1) == 1

    def test_dedicated_unshared_cell_disables_deferral(self):
        """GT-TSCH-style dedicated TX cells transmit regardless of back-off."""
        from repro.mac.cell import Cell as MacCell, CellOption as MacCellOption

        network, node = self._blocked_minimal_node()
        engine = node.tsch
        frame = engine.get_slotframe(MinimalScheduler.SLOTFRAME_HANDLE)
        frame.add_cell(
            MacCell(slot_offset=3, channel_offset=0, options=MacCellOption.TX, neighbor=1)
        )
        engine.csma._state(1).window = 3
        assert engine.schedule_profile().shared_contention_progressions(1) is None
        assert engine.plan_csma_deferral(1) is None

    def test_horizon_heap_uses_the_deferred_occurrence(self):
        network, node = self._blocked_minimal_node()
        engine = node.tsch
        engine.csma._state(1).window = 2
        # Horizons are derived from the clock's slot: from ASN 1 the losing
        # passes land at 7 and 14, so the heap names 21.
        network.clock.asn = 1
        network._risky_dirty.add(node)
        assert network._next_risky_asn(1, 10_000) == 21
        # Without pruning the CSMA-blind horizon is the next occurrence.
        network.csma_pruning = False
        engine.settle_csma(1)
        network._risky_dirty.add(node)
        assert network._next_risky_asn(1, 10_000) == 7


class TestSoaEquivalence:
    """Struct-of-arrays bulk kernel: SoA-on vs SoA-off vs the reference loop.

    Node state always lives in the :class:`repro.kernel.state.NodeStateStore`
    columns (the views guarantee coherence by construction); the ``soa`` flag
    only gates the *bulk* array paths of the dispatch kernel -- masked
    duty-cycle settlement, batched broadcast rx accounting.  All three legs
    must finalize bit-identical metrics, clocks, medium counters and per-node
    MAC stats on every scenario family.
    """

    def _assert_triple(self, runs):
        (soa_net, soa), (off_net, off), (ref_net, ref) = runs
        assert dataclasses.asdict(soa) == dataclasses.asdict(off)
        assert dataclasses.asdict(soa) == dataclasses.asdict(ref)
        assert soa_net.clock.asn == off_net.clock.asn == ref_net.clock.asn
        for other in (off_net, ref_net):
            assert soa_net.medium.total_transmissions == other.medium.total_transmissions
            assert soa_net.medium.total_collisions == other.medium.total_collisions
            for node_id in soa_net.nodes:
                assert dataclasses.asdict(soa_net.nodes[node_id].tsch.stats) == (
                    dataclasses.asdict(other.nodes[node_id].tsch.stats)
                )

    def _triple(self, make_scenario):
        def run(fast, soa):
            scenario = make_scenario()
            network = scenario.build_network()
            network.fast = fast
            network.soa = soa
            metrics = network.run_experiment(
                warmup_s=scenario.warmup_s,
                measurement_s=scenario.measurement_s,
                drain_s=2.0,
                scheduler_name=scenario.scheduler,
            )
            return network, metrics

        return run(True, True), run(True, False), run(False, True)

    @pytest.mark.parametrize("scheduler", [MINIMAL, ORCHESTRA, GT_TSCH])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_fig8_load_bit_identical(self, scheduler, seed):
        self._assert_triple(
            self._triple(
                lambda: traffic_load_scenario(
                    rate_ppm=60.0,
                    scheduler=scheduler,
                    seed=seed,
                    measurement_s=8.0,
                    warmup_s=6.0,
                )
            )
        )

    @pytest.mark.parametrize("scheduler", [MINIMAL, ORCHESTRA, GT_TSCH])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_scale_bit_identical(self, scheduler, seed):
        from repro.experiments.scenarios import scale_scenario

        self._assert_triple(
            self._triple(
                lambda: scale_scenario(
                    num_nodes=30,
                    scheduler=scheduler,
                    seed=seed,
                    measurement_s=6.0,
                    warmup_s=4.0,
                )
            )
        )

    @pytest.mark.parametrize("scheduler", [MINIMAL, ORCHESTRA, GT_TSCH])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_churn_bit_identical(self, scheduler, seed):
        """All four fault classes mutate mid-run; the bulk paths must still
        settle through the same barriers as the per-object code."""
        self._assert_triple(
            self._triple(
                lambda: churn_scenario(
                    num_crashes=1,
                    scheduler=scheduler,
                    seed=seed,
                    rate_ppm=60.0,
                    measurement_s=12.0,
                    warmup_s=8.0,
                )
            )
        )

    def test_soa_flag_defaults_on(self):
        assert Network().soa is True
        assert Network(soa=False).soa is False


class TestRankMemoEquivalence:
    """RPL candidate-rank memoisation: memo on vs the escape hatch.

    The memo applies to the protocol code shared by both slot loops, so the
    standard fast-vs-reference suites above already prove memo-on kernels
    bit-identical to ``step_slot_reference``; this adds the memo-on vs
    memo-off comparison (same kernel, both directions of the escape hatch).
    """

    @pytest.mark.parametrize("scheduler", [MINIMAL, ORCHESTRA, GT_TSCH])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_memo_on_and_off_bit_identical(self, scheduler, seed):
        def run(memo):
            scenario = traffic_load_scenario(
                rate_ppm=60.0,
                scheduler=scheduler,
                seed=seed,
                measurement_s=8.0,
                warmup_s=6.0,
            )
            network = scenario.build_network()
            if not memo:
                network.rank_memo = False
                for node in network.nodes.values():
                    node.rpl.memo_enabled = False
            metrics = network.run_experiment(
                warmup_s=6.0, measurement_s=8.0, drain_s=2.0, scheduler_name=scheduler
            )
            return network, metrics

        memo_net, memo = run(True)
        plain_net, plain = run(False)
        assert dataclasses.asdict(memo) == dataclasses.asdict(plain)
        assert memo_net.clock.asn == plain_net.clock.asn
        assert memo_net.medium.total_transmissions == plain_net.medium.total_transmissions
        assert memo_net.medium.total_collisions == plain_net.medium.total_collisions
        for node_id in plain_net.nodes:
            memo_rpl = memo_net.nodes[node_id].rpl
            plain_rpl = plain_net.nodes[node_id].rpl
            assert memo_rpl.rank == plain_rpl.rank
            assert memo_rpl.preferred_parent == plain_rpl.preferred_parent
            assert memo_rpl.parent_switches == plain_rpl.parent_switches
        # The escape hatch really was off (no skips, full re-scoring) and the
        # memo really was on.
        assert all(
            node.rpl.evaluations_skipped == 0 for node in plain_net.nodes.values()
        )
        memo_evals = sum(n.rpl.parent_evaluations for n in memo_net.nodes.values())
        plain_evals = sum(n.rpl.parent_evaluations for n in plain_net.nodes.values())
        assert memo_evals <= plain_evals
        memo_scores = sum(n.rpl.candidate_recomputes for n in memo_net.nodes.values())
        plain_scores = sum(n.rpl.candidate_recomputes for n in plain_net.nodes.values())
        # Never more work than the escape hatch (strictly less whenever the
        # scenario re-advertises anything, e.g. every minimal/GT-TSCH run).
        assert memo_scores <= plain_scores

    def test_network_escape_hatch_flag(self):
        assert Network().rank_memo is True
        network = Network(rank_memo=False)
        node = network.add_node(
            1,
            position=(0.0, 0.0),
            scheduler=MinimalScheduler(MinimalSchedulerConfig()),
            is_root=True,
        )
        assert node.rpl.memo_enabled is False
