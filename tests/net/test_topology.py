"""Tests for topology builders."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.topology import (
    NodeSpec,
    TopologyBuilder,
    grid_positions,
    line_topology,
    multi_dodag_topology,
    random_topology,
    single_dodag_topology,
    star_topology,
    tree_topology,
)
from repro.rpl.rank import MIN_HOP_RANK_INCREASE


def assert_is_forest(topology: TopologyBuilder):
    """Every non-root node must reach a root by following parents."""
    parent_map = topology.parent_map()
    roots = {spec.node_id for spec in topology.roots()}
    for spec in topology:
        seen = set()
        current = spec.node_id
        while current not in roots:
            assert current not in seen, "cycle detected"
            seen.add(current)
            current = parent_map[current]
            assert current is not None, f"node {spec.node_id} does not reach a root"


class TestTopologyBuilder:
    def test_duplicate_ids_rejected(self):
        topo = TopologyBuilder()
        topo.add(NodeSpec(node_id=0, position=(0, 0), is_root=True))
        with pytest.raises(ValueError):
            topo.add(NodeSpec(node_id=0, position=(1, 1)))

    def test_children_of_and_parent_map(self):
        topo = star_topology(3)
        assert sorted(topo.children_of(0)) == [1, 2, 3]
        assert topo.parent_map()[2] == 0

    def test_spec_lookup(self):
        topo = star_topology(2)
        assert topo.spec(1).parent == 0
        with pytest.raises(KeyError):
            topo.spec(99)

    def test_initial_rank(self):
        topo = line_topology(3)
        assert topo.initial_rank(0) == MIN_HOP_RANK_INCREASE
        assert topo.initial_rank(1) == MIN_HOP_RANK_INCREASE + 2 * MIN_HOP_RANK_INCREASE
        assert topo.initial_rank(2) > topo.initial_rank(1)


class TestCanonicalTopologies:
    def test_line_topology(self):
        topo = line_topology(4, spacing=10.0)
        assert len(topo) == 4
        assert topo.spec(0).is_root
        assert topo.spec(3).parent == 2
        assert topo.spec(3).depth == 3
        assert_is_forest(topo)

    def test_star_topology(self):
        topo = star_topology(5, radius=20.0)
        assert len(topo) == 6
        assert all(spec.parent == 0 for spec in topo if not spec.is_root)
        assert_is_forest(topo)

    def test_tree_topology_counts(self):
        topo = tree_topology(depth=2, branching=2)
        assert len(topo) == 1 + 2 + 4
        assert topo.max_depth() == 2
        assert_is_forest(topo)

    def test_single_dodag_respects_child_limit(self):
        topo = single_dodag_topology(10, max_children_per_node=3)
        for spec in topo:
            assert len(topo.children_of(spec.node_id)) <= 3
        assert_is_forest(topo)

    def test_single_dodag_children_within_radio_range(self):
        topo = single_dodag_topology(8, hop_spacing=28.0)
        for spec in topo:
            if spec.parent is None:
                continue
            parent = topo.spec(spec.parent)
            dist = math.hypot(
                spec.position[0] - parent.position[0],
                spec.position[1] - parent.position[1],
            )
            assert dist == pytest.approx(28.0, abs=1e-6)

    def test_grid_positions(self):
        positions = grid_positions(5, spacing=10.0)
        assert len(positions) == 5
        assert positions[0] == (0.0, 0.0)
        assert positions[4] == (10.0, 10.0)


class TestMultiDodag:
    def test_fig8_topology_is_14_nodes_two_roots(self):
        topo = multi_dodag_topology(num_dodags=2, nodes_per_dodag=7)
        assert len(topo) == 14
        assert len(topo.roots()) == 2
        assert_is_forest(topo)

    def test_fig9_sweep_sizes(self):
        for size in (6, 7, 8, 9):
            topo = multi_dodag_topology(num_dodags=2, nodes_per_dodag=size)
            assert len(topo) == 2 * size

    def test_dodags_are_far_apart(self):
        topo = multi_dodag_topology(num_dodags=2, nodes_per_dodag=7, dodag_separation=500.0)
        first = [spec for spec in topo if spec.dodag_id == 0]
        second = [spec for spec in topo if spec.dodag_id == 7]
        min_gap = min(
            math.hypot(a.position[0] - b.position[0], a.position[1] - b.position[1])
            for a in first
            for b in second
        )
        assert min_gap > 300.0

    def test_dodag_ids_point_to_roots(self):
        topo = multi_dodag_topology(num_dodags=3, nodes_per_dodag=5)
        roots = {spec.node_id for spec in topo.roots()}
        assert all(spec.dodag_id in roots for spec in topo)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            multi_dodag_topology(num_dodags=0)
        with pytest.raises(ValueError):
            single_dodag_topology(0)
        with pytest.raises(ValueError):
            line_topology(0)
        with pytest.raises(ValueError):
            star_topology(0)


class TestRandomTopology:
    def test_connected_tree(self):
        topo = random_topology(12, area=120.0, rng=random.Random(3))
        assert len(topo) == 12
        assert_is_forest(topo)

    def test_depths_consistent_with_parents(self):
        topo = random_topology(10, area=100.0, rng=random.Random(5))
        for spec in topo:
            if spec.parent is not None:
                assert spec.depth == topo.spec(spec.parent).depth + 1

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=0, max_value=1000))
    def test_random_topology_always_forest(self, size, seed):
        topo = random_topology(size, area=80.0, rng=random.Random(seed))
        assert len(topo) == size
        assert_is_forest(topo)


class TestSingleDodagProperties:
    @given(st.integers(min_value=1, max_value=25))
    def test_node_count_and_forest(self, count):
        topo = single_dodag_topology(count)
        assert len(topo) == count
        assert_is_forest(topo)
        assert len(topo.roots()) == 1
