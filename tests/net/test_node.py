"""Tests for the node layer (forwarding, sink behaviour, EBs)."""


from repro.net.topology import line_topology, star_topology

from tests.conftest import make_gt_network


class TestNodeComposition:
    def test_layers_are_wired(self, gt_star_network):
        node = gt_star_network.nodes[1]
        assert node.tsch.rx_callback is not None
        assert node.tsch.tx_done_callback is not None
        assert node.sixtop.request_handler is not None
        assert node.rpl.dio_extra_provider is not None
        assert node.scheduler.node is node

    def test_warm_start_presets_parents(self, gt_star_network):
        assert gt_star_network.nodes[1].rpl.preferred_parent == 0
        assert gt_star_network.nodes[0].rpl.is_root

    def test_repr(self, gt_star_network):
        assert "root" in repr(gt_star_network.nodes[0])


class TestDataGeneration:
    def test_root_does_not_generate(self, gt_star_network):
        gt_star_network.start()
        assert gt_star_network.nodes[0].generate_data() is None

    def test_unjoined_node_does_not_generate(self):
        network = make_gt_network(star_topology(2), warm_start=False)
        network.start()
        assert network.nodes[1].generate_data() is None
        assert network.nodes[1].stats.data_generated == 0

    def test_generated_packet_is_addressed_to_root_via_parent(self, gt_star_network):
        gt_star_network.start()
        node = gt_star_network.nodes[2]
        packet = node.generate_data()
        assert packet is not None
        assert packet.destination == 0
        assert node.stats.data_generated == 1
        queued = node.tsch.queue.peek_for(0)
        assert queued is not None
        assert queued.link_destination == 0

    def test_traffic_disabled_stops_generation(self, gt_star_network):
        gt_star_network.start()
        node = gt_star_network.nodes[1]
        node.traffic_enabled = False
        assert node.generate_data() is None

    def test_sequence_numbers_increment(self, gt_star_network):
        gt_star_network.start()
        node = gt_star_network.nodes[1]
        first = node.generate_data()
        second = node.generate_data()
        assert second.app_seqno == first.app_seqno + 1


class TestForwardingAndSink:
    def test_root_delivers_to_application(self, gt_star_network):
        gt_star_network.start()
        root = gt_star_network.nodes[0]
        leaf = gt_star_network.nodes[1]
        packet = leaf.generate_data()
        hop = packet.for_next_hop(leaf.node_id, root.node_id)
        root._on_mac_rx(hop, asn=10)
        assert root.stats.data_delivered_as_sink == 1

    def test_intermediate_node_forwards_towards_parent(self):
        network = make_gt_network(line_topology(3, spacing=25.0))
        network.start()
        middle = network.nodes[1]
        leaf = network.nodes[2]
        packet = leaf.generate_data()
        hop = packet.for_next_hop(leaf.node_id, middle.node_id)
        middle._on_mac_rx(hop, asn=5)
        assert middle.stats.data_forwarded == 1
        forwarded = middle.tsch.queue.peek_for(0)
        assert forwarded is not None
        assert forwarded.hops == 1
        assert forwarded.packet_id == packet.packet_id

    def test_forwarding_without_parent_counts_routing_drop(self):
        network = make_gt_network(star_topology(2), warm_start=False)
        network.start()
        node = network.nodes[1]
        # Fake a joined state without a parent to hit the no-route branch.
        node.rpl.dodag_id = 0
        node.rpl.rank = 512
        node.is_root = False
        packet = node.generate_data()
        assert packet is None or node.stats.routing_drops >= 0
        # Directly exercise the forwarding path with no parent:
        from repro.net.packet import make_data_packet

        orphan = make_data_packet(source=1, destination=0, created_at=0.0)
        assert not node._route_and_enqueue(orphan)
        assert node.stats.routing_drops >= 1


class TestControlPlane:
    def test_eb_sent_periodically_and_carries_scheduler_fields(self, gt_star_network):
        gt_star_network.start()
        gt_star_network.run_seconds(5.0)
        root = gt_star_network.nodes[0]
        assert root.stats.eb_sent > 0
        # The GT-TSCH root advertises its child-facing channel in EBs.
        assert root.scheduler.own_child_channel is not None

    def test_eb_not_queued_twice(self, gt_star_network):
        gt_star_network.start()
        root = gt_star_network.nodes[0]
        root._send_eb()
        before = root.stats.eb_sent
        root._send_eb()  # previous EB still queued -> skipped
        assert root.stats.eb_sent == before

    def test_unjoined_node_sends_no_ebs(self):
        network = make_gt_network(star_topology(2), warm_start=False)
        network.start()
        node = network.nodes[1]
        node._send_eb()
        assert node.stats.eb_sent == 0

    def test_dio_processing_reaches_scheduler_and_rpl(self, gt_star_network):
        gt_star_network.start()
        child = gt_star_network.nodes[1]
        from repro.rpl.messages import make_dio

        dio = make_dio(sender=0, dodag_id=0, rank=256, l_rx=7)
        child._on_mac_rx(dio, asn=3)
        assert child.rpl.neighbors[0].l_rx == 7

    def test_sixp_packet_dispatched_to_sixtop(self, gt_star_network):
        gt_star_network.start()
        root = gt_star_network.nodes[0]
        child = gt_star_network.nodes[1]
        from repro.sixtop.messages import SixPCommand, SixPMessage, SixPMessageType, make_sixp_packet

        request = SixPMessage(
            message_type=SixPMessageType.REQUEST,
            command=SixPCommand.ASK_CHANNEL,
            seqnum=0,
        )
        packet = make_sixp_packet(child.node_id, root.node_id, request)
        root._on_mac_rx(packet, asn=1)
        assert root.sixtop.responses_sent == 1

    def test_queue_drop_recorded(self, gt_star_network):
        gt_star_network.start()
        node = gt_star_network.nodes[1]
        node.tsch.queue.capacity = 1
        node.generate_data()
        node.generate_data()
        assert node.stats.queue_drops >= 1
