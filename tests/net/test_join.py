"""Cold-start join tests: EB scan, synchronisation, desync re-scan, metrics."""

from __future__ import annotations

import pytest

from repro.experiments.scenarios import GT_TSCH, MINIMAL, join_scenario
from repro.mac.hopping import DEFAULT_HOPPING_SEQUENCE


def build_join_network(scheduler=MINIMAL, seed=1, **kwargs):
    scenario = join_scenario(
        nodes_per_dodag=3,
        scheduler=scheduler,
        seed=seed,
        measurement_s=kwargs.pop("measurement_s", 30.0),
        warmup_s=kwargs.pop("warmup_s", 5.0),
        num_dodags=kwargs.pop("num_dodags", 1),
        **kwargs,
    )
    return scenario.build_network(), scenario


def run_to(network, seconds):
    target = network.clock.seconds_to_slots(seconds)
    if target > network.clock.asn:
        network.run_slots(target - network.clock.asn)


class TestColdBoot:
    def test_non_root_nodes_boot_scanning(self):
        network, _scenario = build_join_network()
        network.start()
        root = network.nodes[0]
        assert not root.cold_start
        assert not root.tsch.scanning
        for node_id, node in network.nodes.items():
            if node_id == 0:
                continue
            assert node.cold_start
            assert node.tsch.scanning
            assert node.rpl.preferred_parent is None
            assert node.tsch.all_cells() == []
            assert node_id in network._scanning

    def test_scan_channel_walks_the_hopping_sequence(self):
        network, _scenario = build_join_network()
        network.start()
        engine = network.nodes[1].tsch
        dwell = engine.config.scan_dwell_slots
        period = len(DEFAULT_HOPPING_SEQUENCE)
        for asn in (0, 1, dwell - 1, dwell, 5 * dwell + 3, 1000):
            expected = DEFAULT_HOPPING_SEQUENCE[(asn // dwell) % period]
            assert engine.scan_channel(asn) == expected
        # The plan is interned per channel and listens outside any cell.
        plan = engine.scan_plan(0)
        assert plan.action == "rx"
        assert plan.cell is None
        assert plan is engine.scan_plan(0)

    def test_scan_slots_account_as_idle_listen(self):
        network, _scenario = build_join_network()
        network.start()
        # 50 slots (0.5 s) is well before the root's first EB at ~2 s.
        network.run_slots(50)
        network._flush_duty_cycle()
        for node_id, node in network.nodes.items():
            if node_id == 0:
                continue
            assert node.tsch.scanning
            meter = node.tsch.duty_cycle
            # Every scan slot is one idle listen: radio on, nothing decoded.
            assert meter.rx_slots == 50
            assert meter.idle_listen_slots == 50
            assert meter.sleep_slots == 0
            assert meter.total_slots == 50


class TestSynchronisation:
    @pytest.mark.parametrize("scheduler", [MINIMAL, GT_TSCH])
    def test_whole_network_joins(self, scheduler):
        network, _scenario = build_join_network(scheduler=scheduler)
        network.start()
        run_to(network, 30.0)
        for node in network.nodes.values():
            assert not node.tsch.scanning
            assert node.rpl.is_joined()
        assert network._scanning == {}

    def test_sync_starts_the_stack_and_join_closes_on_parent(self):
        network, _scenario = build_join_network()
        network.start()
        run_to(network, 30.0)
        node = network.nodes[2]
        assert node.tsch.all_cells() != []
        assert node.rpl.preferred_parent is not None
        # The join episode closed exactly once per node.
        collector = network.metrics
        assert collector is not None
        assert collector._join_open == {}
        assert len(collector._join_durations) == 2

    def test_join_metrics_exported_with_censoring_keys(self):
        network, scenario = build_join_network()
        metrics = network.run_experiment(
            warmup_s=scenario.warmup_s,
            measurement_s=scenario.measurement_s,
            drain_s=3.0,
            scheduler_name=scenario.scheduler,
        )
        assert metrics.nodes_joined == 2
        assert metrics.time_to_join_s > 0.0
        assert metrics.time_to_first_packet_s > metrics.time_to_join_s
        data = metrics.as_dict()
        for key in ("time_to_join_s", "time_to_first_packet_s", "nodes_joined"):
            assert key in data


class TestDesync:
    def test_keepalive_silence_forces_a_rescan(self):
        network, _scenario = build_join_network(desync_timeout_s=5.0)
        network.start()
        run_to(network, 30.0)
        node = network.nodes[2]
        assert not node.tsch.scanning
        assert node._keepalive_timer is not None
        faults_before = network.metrics._faults_injected
        # Simulate prolonged silence: nothing heard for over the timeout.
        node._last_heard_s = network.events.now - 10.0
        node._keepalive_check()
        assert node.tsch.scanning
        assert node.rpl.preferred_parent is None
        assert node.tsch.all_cells() == []
        assert len(node.tsch.queue) == 0
        assert network.metrics._faults_injected == faults_before + 1
        # The node re-syncs off the next beacon and rejoins.
        run_to(network, 60.0)
        assert not node.tsch.scanning
        assert node.rpl.is_joined()

    def test_no_keepalive_timer_without_timeout(self):
        network, _scenario = build_join_network()
        assert network.nodes[1]._keepalive_timer is None

    def test_keepalive_noop_while_recently_heard(self):
        network, _scenario = build_join_network(desync_timeout_s=5.0)
        network.start()
        run_to(network, 30.0)
        node = network.nodes[2]
        node._last_heard_s = network.events.now - 1.0
        node._keepalive_check()
        assert not node.tsch.scanning
