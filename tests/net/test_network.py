"""Tests for the slot-synchronous network loop."""

import pytest

from repro.net.network import Network
from repro.net.topology import star_topology
from repro.schedulers.minimal import MinimalScheduler

from tests.conftest import make_gt_network, make_orchestra_network


class TestConstruction:
    def test_add_node_registers_on_medium(self):
        network = Network(seed=1)
        network.add_node(0, (0.0, 0.0), MinimalScheduler(), is_root=True)
        assert network.medium.node_ids() == (0,)
        assert len(network) == 1

    def test_duplicate_node_id_rejected(self):
        network = Network(seed=1)
        network.add_node(0, (0.0, 0.0), MinimalScheduler(), is_root=True)
        with pytest.raises(ValueError):
            network.add_node(0, (1.0, 0.0), MinimalScheduler())

    def test_build_from_topology_warm_start(self):
        network = make_gt_network(star_topology(3))
        assert len(network) == 4
        assert network.roots()[0].node_id == 0
        for node_id in (1, 2, 3):
            assert network.nodes[node_id].rpl.preferred_parent == 0

    def test_build_from_topology_cold_start(self):
        network = make_gt_network(star_topology(3), warm_start=False)
        for node_id in (1, 2, 3):
            assert network.nodes[node_id].rpl.preferred_parent is None


class TestSlotLoop:
    def test_run_slots_advances_clock(self):
        network = make_gt_network()
        network.run_slots(100)
        assert network.clock.asn == 100

    def test_run_seconds_advances_clock(self):
        network = make_gt_network()
        network.run_seconds(1.5)
        assert network.clock.now == pytest.approx(1.5, abs=0.02)

    def test_start_is_idempotent(self):
        network = make_gt_network()
        network.start()
        network.start()
        network.run_slots(10)

    def test_duty_cycle_accounted_every_slot(self):
        network = make_gt_network()
        network.run_slots(200)
        for node in network.nodes.values():
            assert node.tsch.duty_cycle.total_slots == 200

    def test_unicast_frames_not_processed_by_overhearers(self):
        """A frame addressed to the root must not be forwarded by siblings."""
        network = make_gt_network(star_topology(3), rate_ppm=60)
        network.run_seconds(20.0)
        for node_id in (1, 2, 3):
            assert network.nodes[node_id].stats.data_forwarded == 0

    def test_deterministic_with_same_seed(self):
        results = []
        for _ in range(2):
            network = make_gt_network(star_topology(3), seed=11, rate_ppm=120)
            network.run_seconds(15.0)
            root = network.nodes[0]
            results.append(
                (
                    root.stats.data_delivered_as_sink,
                    network.medium.total_transmissions,
                    network.clock.asn,
                )
            )
        assert results[0] == results[1]

    def test_different_seeds_differ(self):
        outcomes = set()
        for seed in (1, 2, 3):
            network = make_gt_network(star_topology(3), seed=seed, rate_ppm=120)
            network.run_seconds(15.0)
            outcomes.add(network.medium.total_transmissions)
        assert len(outcomes) > 1


class TestRunExperiment:
    def test_metrics_window_excludes_warmup(self):
        network = make_gt_network(star_topology(3), rate_ppm=120)
        metrics = network.run_experiment(warmup_s=5.0, measurement_s=10.0, drain_s=2.0)
        assert metrics.duration_s == pytest.approx(10.0, abs=0.1)
        assert metrics.generated > 0
        assert 0.0 <= metrics.pdr_percent <= 100.0

    def test_traffic_stops_during_drain(self):
        network = make_gt_network(star_topology(3), rate_ppm=600)
        network.run_experiment(warmup_s=2.0, measurement_s=5.0, drain_s=2.0)
        for node in network.nodes.values():
            assert not node.traffic_enabled

    def test_scheduler_name_defaults_to_scheduler(self):
        network = make_gt_network(star_topology(2), rate_ppm=60)
        metrics = network.run_experiment(warmup_s=2.0, measurement_s=5.0, drain_s=1.0)
        assert metrics.scheduler == "GT-TSCH"

    def test_orchestra_network_runs(self):
        network = make_orchestra_network(star_topology(3), rate_ppm=60)
        metrics = network.run_experiment(warmup_s=5.0, measurement_s=10.0, drain_s=2.0)
        assert metrics.scheduler == "Orchestra"
        assert metrics.generated > 0
        assert metrics.delivered > 0
