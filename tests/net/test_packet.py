"""Tests for the packet model."""


from repro.net.packet import (
    BROADCAST_ADDRESS,
    Packet,
    PacketType,
    make_data_packet,
)


class TestPacketBasics:
    def test_unique_ids(self):
        a = make_data_packet(0, 1, created_at=0.0)
        b = make_data_packet(0, 1, created_at=0.0)
        assert a.packet_id != b.packet_id

    def test_link_source_defaults_to_source(self):
        packet = Packet(ptype=PacketType.DATA, source=3, destination=9)
        assert packet.link_source == 3

    def test_is_broadcast(self):
        dio = Packet(
            ptype=PacketType.DIO,
            source=0,
            destination=BROADCAST_ADDRESS,
            link_destination=BROADCAST_ADDRESS,
        )
        assert dio.is_broadcast
        data = make_data_packet(0, 1, created_at=0.0)
        data.link_destination = 1
        assert not data.is_broadcast

    def test_is_control(self):
        assert not make_data_packet(0, 1, created_at=0.0).is_control
        for ptype in (PacketType.EB, PacketType.DIO, PacketType.DAO, PacketType.SIXP):
            packet = Packet(ptype=ptype, source=0, destination=1)
            assert packet.is_control


class TestPerHopCopies:
    def test_for_next_hop_rewrites_link_addresses(self):
        packet = make_data_packet(source=5, destination=0, created_at=1.0)
        hop = packet.for_next_hop(link_source=5, link_destination=2)
        assert hop.link_source == 5
        assert hop.link_destination == 2
        assert hop.source == 5
        assert hop.destination == 0

    def test_for_next_hop_preserves_identity_and_timing(self):
        packet = make_data_packet(source=5, destination=0, created_at=1.0)
        packet.hops = 2
        packet.retransmissions = 1
        hop = packet.for_next_hop(5, 2)
        assert hop.packet_id == packet.packet_id
        assert hop.created_at == 1.0
        assert hop.hops == 2
        assert hop.retransmissions == 1

    def test_for_next_hop_does_not_mutate_original(self):
        packet = make_data_packet(source=5, destination=0, created_at=1.0)
        hop = packet.for_next_hop(5, 2)
        hop.hops += 1
        hop.link_destination = 3
        assert packet.hops == 0
        assert packet.link_destination != 3 or packet.link_destination == BROADCAST_ADDRESS


class TestMakeDataPacket:
    def test_fields(self):
        packet = make_data_packet(source=4, destination=0, created_at=2.5, app_seqno=17)
        assert packet.ptype is PacketType.DATA
        assert packet.source == 4
        assert packet.destination == 0
        assert packet.created_at == 2.5
        assert packet.enqueued_at == 2.5
        assert packet.app_seqno == 17
