"""Tests for application traffic generators."""

import random

import pytest

from repro.net.traffic import PeriodicTrafficGenerator, PoissonTrafficGenerator
from repro.sim.events import EventQueue


class FakeNode:
    def __init__(self):
        self.generated_times = []
        self.queue = None

    def generate_data(self):
        self.generated_times.append(self.queue.now)


def attach(generator, seed=1):
    node = FakeNode()
    queue = EventQueue()
    node.queue = queue
    generator.attach(node, queue, random.Random(seed))
    return node, queue


class TestPeriodicTrafficGenerator:
    def test_rate_is_respected(self):
        generator = PeriodicTrafficGenerator(rate_ppm=60, jitter_fraction=0.0)
        node, queue = attach(generator)
        generator.start()
        queue.run_until(60.0)
        assert 59 <= len(node.generated_times) <= 61

    def test_period_property(self):
        assert PeriodicTrafficGenerator(rate_ppm=120).period_s == pytest.approx(0.5)
        assert PeriodicTrafficGenerator(rate_ppm=0).period_s == float("inf")

    def test_zero_rate_never_fires(self):
        generator = PeriodicTrafficGenerator(rate_ppm=0)
        node, queue = attach(generator)
        generator.start()
        queue.run_until(100.0)
        assert node.generated_times == []

    def test_start_delay(self):
        generator = PeriodicTrafficGenerator(rate_ppm=60, start_delay_s=10.0)
        node, queue = attach(generator)
        generator.start()
        queue.run_until(30.0)
        assert node.generated_times
        assert min(node.generated_times) >= 10.0

    def test_stop(self):
        generator = PeriodicTrafficGenerator(rate_ppm=600)
        node, queue = attach(generator)
        generator.start()
        queue.run_until(1.0)
        count = len(node.generated_times)
        generator.stop()
        queue.run_until(10.0)
        assert len(node.generated_times) == count

    def test_jitter_varies_intervals(self):
        generator = PeriodicTrafficGenerator(rate_ppm=120, jitter_fraction=0.3)
        node, queue = attach(generator)
        generator.start()
        queue.run_until(30.0)
        gaps = {
            round(b - a, 4)
            for a, b in zip(node.generated_times, node.generated_times[1:])
        }
        assert len(gaps) > 3

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PeriodicTrafficGenerator(rate_ppm=-1)
        with pytest.raises(ValueError):
            PeriodicTrafficGenerator(rate_ppm=10, jitter_fraction=1.5)
        with pytest.raises(ValueError):
            PeriodicTrafficGenerator(rate_ppm=10, start_delay_s=-1.0)

    def test_generated_counter(self):
        generator = PeriodicTrafficGenerator(rate_ppm=120, jitter_fraction=0.0)
        node, queue = attach(generator)
        generator.start()
        queue.run_until(10.0)
        assert generator.generated == len(node.generated_times)


class TestPoissonTrafficGenerator:
    def test_mean_rate_approximately_respected(self):
        generator = PoissonTrafficGenerator(rate_ppm=120)
        node, queue = attach(generator, seed=3)
        generator.start()
        queue.run_until(300.0)
        expected = 120 * 5
        assert 0.7 * expected <= len(node.generated_times) <= 1.3 * expected

    def test_intervals_are_irregular(self):
        generator = PoissonTrafficGenerator(rate_ppm=60)
        node, queue = attach(generator, seed=5)
        generator.start()
        queue.run_until(120.0)
        gaps = [b - a for a, b in zip(node.generated_times, node.generated_times[1:])]
        assert len({round(g, 3) for g in gaps}) > 10

    def test_start_delay(self):
        generator = PoissonTrafficGenerator(rate_ppm=600, start_delay_s=5.0)
        node, queue = attach(generator)
        generator.start()
        queue.run_until(20.0)
        assert min(node.generated_times) >= 5.0
