"""Tests for ETX estimation and per-link statistics."""

import pytest
from hypothesis import given, strategies as st

from repro.phy.linkstats import ETX_MAX, ETX_MIN, EtxEstimator, LinkStats


class TestLinkStats:
    def test_prr_zero_without_attempts(self):
        assert LinkStats().prr == 0.0

    def test_prr_ratio(self):
        stats = LinkStats(tx_attempts=10, tx_successes=7)
        assert stats.prr == pytest.approx(0.7)


class TestEtxEstimator:
    def test_initial_etx_used_for_unknown_links(self):
        estimator = EtxEstimator(initial_etx=2.0)
        assert estimator.etx(42) == 2.0

    def test_successful_single_attempts_drive_etx_towards_one(self):
        estimator = EtxEstimator(alpha=0.5, initial_etx=2.0)
        for _ in range(30):
            estimator.record_tx(1, success=True, attempts=1)
        assert estimator.etx(1) == pytest.approx(1.0, abs=0.01)

    def test_failures_drive_etx_up(self):
        estimator = EtxEstimator(alpha=0.5, initial_etx=2.0)
        for _ in range(30):
            estimator.record_tx(1, success=False, attempts=5)
        assert estimator.etx(1) > 4.0

    def test_etx_clamped_to_bounds(self):
        estimator = EtxEstimator(alpha=0.0)
        estimator.record_tx(1, success=False, attempts=100)
        assert estimator.etx(1) <= ETX_MAX
        estimator.record_tx(2, success=True, attempts=1)
        assert estimator.etx(2) >= ETX_MIN

    def test_prr_is_inverse_of_etx(self):
        estimator = EtxEstimator(alpha=0.0)
        estimator.record_tx(1, success=True, attempts=2)
        assert estimator.prr(1) == pytest.approx(1.0 / estimator.etx(1))

    def test_record_rx_tracks_counters(self):
        estimator = EtxEstimator()
        estimator.record_rx(3, now=1.5)
        assert estimator.stats(3).rx_frames == 1
        assert estimator.stats(3).last_rx_time == 1.5

    def test_stats_counters_accumulate(self):
        estimator = EtxEstimator()
        estimator.record_tx(1, success=True, attempts=3, now=2.0)
        estimator.record_tx(1, success=False, attempts=2, now=3.0)
        stats = estimator.stats(1)
        assert stats.tx_attempts == 5
        assert stats.tx_successes == 1
        assert stats.last_tx_time == 3.0

    def test_known_neighbors(self):
        estimator = EtxEstimator()
        estimator.record_tx(1, True)
        estimator.record_rx(2)
        assert estimator.known_neighbors() == {1, 2}

    def test_reset_forgets_neighbor(self):
        estimator = EtxEstimator(initial_etx=2.0)
        estimator.record_tx(1, success=False, attempts=5)
        estimator.reset(1)
        assert estimator.etx(1) == 2.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            EtxEstimator(alpha=1.0)
        with pytest.raises(ValueError):
            EtxEstimator(initial_etx=0.5)
        with pytest.raises(ValueError):
            EtxEstimator().record_tx(1, success=True, attempts=0)

    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(min_value=1, max_value=8)),
            min_size=1,
            max_size=50,
        )
    )
    def test_etx_always_within_bounds(self, outcomes):
        estimator = EtxEstimator(alpha=0.9)
        for success, attempts in outcomes:
            value = estimator.record_tx(7, success=success, attempts=attempts)
            assert ETX_MIN <= value <= ETX_MAX
