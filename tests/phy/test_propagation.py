"""Tests for the radio propagation models."""

import pytest
from hypothesis import given, strategies as st

from repro.phy.propagation import (
    FixedPrrModel,
    LogisticPrrModel,
    UnitDiskLossyEdgeModel,
    distance,
)


class TestDistance:
    def test_euclidean(self):
        assert distance((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_zero(self):
        assert distance((1.5, -2.0), (1.5, -2.0)) == 0.0


class TestUnitDiskLossyEdgeModel:
    def test_full_prr_inside_reliable_range(self):
        model = UnitDiskLossyEdgeModel(reliable_range=20, communication_range=40, interference_range=60)
        assert model.prr((0, 0), (10, 0)) == pytest.approx(model.prr_max)

    def test_zero_prr_beyond_communication_range(self):
        model = UnitDiskLossyEdgeModel(reliable_range=20, communication_range=40, interference_range=60)
        assert model.prr((0, 0), (41, 0)) == 0.0
        assert not model.in_communication_range((0, 0), (41, 0))

    def test_edge_prr_decays_linearly(self):
        model = UnitDiskLossyEdgeModel(
            reliable_range=20, communication_range=40, interference_range=60,
            prr_max=1.0, prr_edge=0.5,
        )
        midpoint = model.prr((0, 0), (30, 0))
        assert midpoint == pytest.approx(0.75)

    def test_interference_extends_beyond_communication(self):
        model = UnitDiskLossyEdgeModel(reliable_range=20, communication_range=40, interference_range=60)
        assert model.in_interference_range((0, 0), (50, 0))
        assert not model.in_interference_range((0, 0), (61, 0))
        assert model.prr((0, 0), (50, 0)) == 0.0

    def test_invalid_range_ordering_rejected(self):
        with pytest.raises(ValueError):
            UnitDiskLossyEdgeModel(reliable_range=50, communication_range=40)

    def test_invalid_prr_ordering_rejected(self):
        with pytest.raises(ValueError):
            UnitDiskLossyEdgeModel(prr_max=0.4, prr_edge=0.6)

    @given(st.floats(min_value=0.0, max_value=100.0))
    def test_prr_monotonically_non_increasing_with_distance(self, d):
        model = UnitDiskLossyEdgeModel()
        closer = model.prr((0, 0), (d, 0))
        farther = model.prr((0, 0), (d + 1.0, 0))
        assert farther <= closer + 1e-12

    @given(st.floats(min_value=0.0, max_value=200.0))
    def test_prr_bounded(self, d):
        model = UnitDiskLossyEdgeModel()
        prr = model.prr((0, 0), (d, 0))
        assert 0.0 <= prr <= 1.0


class TestLogisticPrrModel:
    def test_close_links_near_max(self):
        model = LogisticPrrModel()
        assert model.prr((0, 0), (1, 0)) > 0.9

    def test_far_links_floor_to_zero(self):
        model = LogisticPrrModel()
        assert model.prr((0, 0), (200, 0)) == 0.0

    def test_midpoint_is_half_of_max(self):
        model = LogisticPrrModel(midpoint=35.0, prr_max=0.98)
        assert model.prr((0, 0), (35, 0)) == pytest.approx(0.49, abs=1e-6)

    def test_interference_range(self):
        model = LogisticPrrModel(interference_range=80.0)
        assert model.in_interference_range((0, 0), (79, 0))
        assert not model.in_interference_range((0, 0), (81, 0))

    @given(st.floats(min_value=0.0, max_value=150.0))
    def test_monotone_decay(self, d):
        model = LogisticPrrModel()
        assert model.prr((0, 0), (d + 1.0, 0)) <= model.prr((0, 0), (d, 0)) + 1e-12


class TestFixedPrrModel:
    def test_default_prr(self):
        model = FixedPrrModel(default_prr=0.5)
        assert model.prr((0, 0), (1, 1)) == 0.5

    def test_set_link_is_symmetric_by_default(self):
        model = FixedPrrModel()
        model.set_link((0, 0), (1, 0), 0.8)
        assert model.prr((0, 0), (1, 0)) == 0.8
        assert model.prr((1, 0), (0, 0)) == 0.8

    def test_asymmetric_links(self):
        model = FixedPrrModel(symmetric=False)
        model.set_link((0, 0), (1, 0), 0.8)
        assert model.prr((0, 0), (1, 0)) == 0.8
        assert model.prr((1, 0), (0, 0)) == 0.0

    def test_interference_pairs(self):
        model = FixedPrrModel()
        model.add_interference((0, 0), (5, 5))
        assert model.in_interference_range((0, 0), (5, 5))
        assert model.prr((0, 0), (5, 5)) == 0.0

    def test_communicating_pairs_always_interfere(self):
        model = FixedPrrModel()
        model.set_link((0, 0), (1, 0), 0.9)
        assert model.in_interference_range((0, 0), (1, 0))

    def test_invalid_prr_rejected(self):
        model = FixedPrrModel()
        with pytest.raises(ValueError):
            model.set_link((0, 0), (1, 0), 1.5)
        with pytest.raises(ValueError):
            FixedPrrModel(default_prr=-0.1)
