"""Unit tests for :mod:`repro.phy.dynamic`: policy validation, driver purity,
per-link scale application and the frozen-snapshot epoch guard."""

from __future__ import annotations

import pytest

from repro.phy.dynamic import (
    DynamicMediumDriver,
    arm_link_drift,
    default_drift_policy,
)
class TestPolicyValidation:
    def test_defaults_factory_builds_a_valid_policy(self):
        policy = default_drift_policy()
        assert policy.num_epochs == 3
        assert policy.end_s() == 15.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError, match="start_s"):
            default_drift_policy(start_s=-1.0)

    @pytest.mark.parametrize("epoch_s", [0.0, -2.0])
    def test_non_positive_epoch_rejected(self, epoch_s):
        with pytest.raises(ValueError, match="epoch_s"):
            default_drift_policy(epoch_s=epoch_s)

    def test_zero_epochs_rejected(self):
        with pytest.raises(ValueError, match="num_epochs"):
            default_drift_policy(num_epochs=0)

    @pytest.mark.parametrize(
        "low,high", [(0.0, 0.5), (0.6, 0.5), (0.5, 1.2), (-0.1, 0.5)]
    )
    def test_bad_scale_interval_rejected(self, low, high):
        with pytest.raises(ValueError, match="scale"):
            default_drift_policy(scale_low=low, scale_high=high)

    @pytest.mark.parametrize("fraction", [-0.1, 1.1])
    def test_bad_link_fraction_rejected(self, fraction):
        with pytest.raises(ValueError, match="link_fraction"):
            default_drift_policy(link_fraction=fraction)

    def test_policy_is_immutable(self):
        policy = default_drift_policy()
        with pytest.raises(AttributeError):
            policy.seed = 2

    def test_end_time(self):
        policy = default_drift_policy(start_s=10.0, epoch_s=4.0, num_epochs=5)
        assert policy.end_s() == 30.0


def _network(num_nodes=4, freeze=True):
    """A tiny live network whose medium can be frozen."""
    from repro.net.network import Network
    from repro.schedulers.minimal import MinimalScheduler, MinimalSchedulerConfig

    network = Network()
    for node_id in range(num_nodes):
        network.add_node(
            node_id,
            position=(float(node_id) * 10.0, 0.0),
            scheduler=MinimalScheduler(MinimalSchedulerConfig()),
            is_root=node_id == 0,
        )
    if freeze:
        network.medium.freeze()
    return network


class TestDriver:
    def test_draw_is_a_pure_function_of_seed_and_index(self):
        network = _network()
        policy = default_drift_policy(seed=7)
        driver = DynamicMediumDriver(network, policy)
        first = driver.draw_scale_rows(1)
        second = driver.draw_scale_rows(1)
        assert first == second
        # A second driver over the same policy draws the same table.
        other = DynamicMediumDriver(network, default_drift_policy(seed=7))
        assert other.draw_scale_rows(1) == first

    def test_different_epochs_and_seeds_draw_different_tables(self):
        network = _network()
        driver = DynamicMediumDriver(network, default_drift_policy(seed=7))
        assert driver.draw_scale_rows(0) != driver.draw_scale_rows(1)
        reseeded = DynamicMediumDriver(network, default_drift_policy(seed=8))
        assert reseeded.draw_scale_rows(0) != driver.draw_scale_rows(0)

    def test_drawn_scales_respect_the_policy_bounds(self):
        network = _network()
        policy = default_drift_policy(seed=3, scale_low=0.6, scale_high=0.8)
        driver = DynamicMediumDriver(network, policy)
        rows = driver.draw_scale_rows(0)
        assert set(rows) == set(network.medium.node_ids())
        for row in rows.values():
            assert len(row) == 4
            for value in row:
                assert value == 1.0 or 0.6 <= value <= 0.8

    def test_arm_schedules_epochs_and_restore(self):
        network = _network()
        policy = default_drift_policy(seed=1, start_s=2.0, epoch_s=1.0, num_epochs=2)
        driver = arm_link_drift(network, policy)
        assert driver is not None and driver.armed
        assert arm_link_drift(network, None) is None
        before = len(network.events._heap)
        driver.arm()  # idempotent
        assert len(network.events._heap) == before

        assert not network.medium.in_link_epoch
        network.events.run_until(2.5)
        assert network.medium.in_link_epoch
        assert network.medium.link_epoch == 1
        network.events.run_until(3.5)
        assert network.medium.link_epoch == 2
        network.events.run_until(4.5)
        # Restore fired: pristine tables, three transitions total.
        assert not network.medium.in_link_epoch
        assert network.medium.link_epoch == 3

    def test_restore_is_bit_exact(self):
        network = _network()
        medium = network.medium
        pristine = {
            sender: list(medium._prr_rows[sender]) for sender in medium.node_ids()
        }
        driver = DynamicMediumDriver(network, default_drift_policy(seed=2))
        medium.set_link_prr_scales(driver.draw_scale_rows(0))
        assert medium._prr_rows != pristine or all(
            value == 1.0 for row in driver.draw_scale_rows(0).values() for value in row
        )
        medium.set_link_prr_scales(None)
        assert {
            sender: list(medium._prr_rows[sender]) for sender in medium.node_ids()
        } == pristine


class TestFrozenSnapshotGuard:
    def test_export_refused_mid_epoch(self):
        network = _network()
        driver = DynamicMediumDriver(network, default_drift_policy(seed=1))
        network.medium.set_link_prr_scales(driver.draw_scale_rows(0))
        with pytest.raises(RuntimeError, match="epoch"):
            network.medium.export_frozen()
        network.medium.set_link_prr_scales(None)
        snapshot = network.medium.export_frozen()
        assert snapshot["link_epoch"] == 2  # transitions since freeze()

    def test_adopter_starts_a_fresh_epoch_history(self):
        donor = _network()
        # A transition history on the donor: open and close one epoch.
        driver = DynamicMediumDriver(donor, default_drift_policy(seed=5))
        donor.medium.set_link_prr_scales(driver.draw_scale_rows(0))
        donor.medium.set_link_prr_scales(None)
        snapshot = donor.medium.export_frozen()
        assert snapshot["link_epoch"] == 2
        adopter = _network(num_nodes=4, freeze=False)
        assert adopter.medium.adopt_frozen(snapshot)
        assert adopter.medium.link_epoch == 0
        assert not adopter.medium.in_link_epoch
