"""Tests for per-slot medium arbitration (collisions, ACKs, hidden terminals)."""

import random

import pytest

from repro.net.packet import BROADCAST_ADDRESS, Packet, PacketType, make_data_packet
from repro.phy.medium import Medium, TransmissionIntent
from repro.phy.propagation import FixedPrrModel, UnitDiskLossyEdgeModel


def perfect_medium(positions, interference_pairs=None):
    """A medium where every registered link is perfect (PRR 1)."""
    model = FixedPrrModel(default_prr=0.0)
    keys = list(positions.items())
    for i, (_, pa) in enumerate(keys):
        for j, (_, pb) in enumerate(keys):
            if i < j:
                model.set_link(pa, pb, 1.0)
    if interference_pairs:
        for a, b in interference_pairs:
            model.add_interference(positions[a], positions[b])
    medium = Medium(model, random.Random(1))
    for node_id, position in positions.items():
        medium.register_node(node_id, position)
    return medium


def unicast(sender, receiver, channel):
    packet = make_data_packet(sender, receiver, created_at=0.0)
    packet.link_source = sender
    packet.link_destination = receiver
    return TransmissionIntent(sender=sender, packet=packet, channel=channel)


class TestLinkQueries:
    def test_link_prr_and_neighbors(self):
        medium = Medium(UnitDiskLossyEdgeModel(), random.Random(0))
        medium.register_node(0, (0, 0))
        medium.register_node(1, (10, 0))
        medium.register_node(2, (200, 0))
        assert medium.link_prr(0, 1) > 0.9
        assert medium.link_prr(0, 2) == 0.0
        assert medium.neighbors_of(0) == [1]

    def test_self_link_is_zero(self):
        medium = Medium(UnitDiskLossyEdgeModel(), random.Random(0))
        medium.register_node(0, (0, 0))
        assert medium.link_prr(0, 0) == 0.0
        assert not medium.interferes(0, 0)

    def test_moving_a_node_invalidates_cache(self):
        medium = Medium(UnitDiskLossyEdgeModel(), random.Random(0))
        medium.register_node(0, (0, 0))
        medium.register_node(1, (10, 0))
        assert medium.link_prr(0, 1) > 0.0
        medium.register_node(1, (500, 0))
        assert medium.link_prr(0, 1) == 0.0


class TestSlotResolution:
    def test_single_unicast_delivery_and_ack(self):
        medium = perfect_medium({0: (0, 0), 1: (1, 0)})
        results = medium.resolve_slot([unicast(0, 1, channel=15)], {1: 15})
        assert results[0].delivered
        assert results[0].acked
        assert results[0].receivers == [1]

    def test_no_delivery_when_listener_on_other_channel(self):
        medium = perfect_medium({0: (0, 0), 1: (1, 0)})
        results = medium.resolve_slot([unicast(0, 1, channel=15)], {1: 20})
        assert not results[0].delivered
        assert not results[0].acked

    def test_no_delivery_when_destination_not_listening(self):
        medium = perfect_medium({0: (0, 0), 1: (1, 0)})
        results = medium.resolve_slot([unicast(0, 1, channel=15)], {})
        assert not results[0].delivered

    def test_collision_when_two_senders_same_channel(self):
        medium = perfect_medium({0: (0, 0), 1: (1, 0), 2: (2, 0)})
        intents = [unicast(0, 1, 15), unicast(2, 1, 15)]
        results = medium.resolve_slot(intents, {1: 15})
        assert not results[0].delivered
        assert not results[1].delivered
        assert results[0].collided or results[1].collided
        assert medium.total_collisions >= 1

    def test_no_collision_on_different_channels(self):
        medium = perfect_medium({0: (0, 0), 1: (1, 0), 2: (2, 0), 3: (3, 0)})
        intents = [unicast(0, 1, 15), unicast(2, 3, 20)]
        results = medium.resolve_slot(intents, {1: 15, 3: 20})
        assert results[0].delivered
        assert results[1].delivered

    def test_hidden_terminal_collision(self):
        """Two senders out of each other's range still collide at the listener.

        This is interference problem 4 of Section III (the hidden-terminal
        case motivating GT-TSCH's three-hop channel uniqueness).
        """
        model = FixedPrrModel(default_prr=0.0)
        positions = {0: (0.0, 0.0), 1: (10.0, 0.0), 2: (20.0, 0.0)}
        model.set_link(positions[0], positions[1], 1.0)
        model.set_link(positions[2], positions[1], 1.0)
        # Senders 0 and 2 cannot hear each other (no link), but both reach 1.
        medium = Medium(model, random.Random(1))
        for node_id, position in positions.items():
            medium.register_node(node_id, position)
        results = medium.resolve_slot([unicast(0, 1, 15), unicast(2, 1, 15)], {1: 15})
        assert not results[0].delivered
        assert not results[1].delivered

    def test_broadcast_reaches_all_listeners(self):
        medium = perfect_medium({0: (0, 0), 1: (1, 0), 2: (2, 0)})
        packet = Packet(
            ptype=PacketType.DIO,
            source=0,
            destination=BROADCAST_ADDRESS,
            link_source=0,
            link_destination=BROADCAST_ADDRESS,
        )
        intent = TransmissionIntent(sender=0, packet=packet, channel=15, expects_ack=False)
        results = medium.resolve_slot([intent], {1: 15, 2: 15})
        assert sorted(results[0].receivers) == [1, 2]
        assert not results[0].acked

    def test_lossy_link_statistics(self):
        model = FixedPrrModel(default_prr=0.0)
        model.set_link((0.0, 0.0), (1.0, 0.0), 0.5)
        medium = Medium(model, random.Random(7))
        medium.register_node(0, (0.0, 0.0))
        medium.register_node(1, (1.0, 0.0))
        delivered = 0
        for _ in range(400):
            results = medium.resolve_slot([unicast(0, 1, 15)], {1: 15})
            delivered += int(results[0].delivered)
        assert 140 < delivered < 260  # ~50 % with generous slack

    def test_transmitter_not_in_listeners(self):
        """Half-duplex: the sender itself never appears as a receiver."""
        medium = perfect_medium({0: (0, 0), 1: (1, 0)})
        results = medium.resolve_slot([unicast(0, 1, 15)], {1: 15})
        assert 0 not in results[0].receivers

    def test_empty_slot(self):
        medium = perfect_medium({0: (0, 0)})
        assert medium.resolve_slot([], {0: 15}) == []

    def test_interference_only_node_does_not_decode(self):
        """A node in interference range but out of communication range corrupts
        receptions without being able to decode anything itself."""
        model = FixedPrrModel(default_prr=0.0)
        a, b, c = (0.0, 0.0), (1.0, 0.0), (2.0, 0.0)
        model.set_link(a, b, 1.0)
        model.add_interference(c, b)  # c's energy reaches b, but no usable link
        medium = Medium(model, random.Random(1))
        medium.register_node(0, a)
        medium.register_node(1, b)
        medium.register_node(2, c)
        # c transmits to an unrelated destination on the same channel.
        intents = [unicast(0, 1, 15), unicast(2, 0, 15)]
        results = medium.resolve_slot(intents, {1: 15})
        assert not results[0].delivered


class TestFreeze:
    def _medium(self):
        medium = Medium(UnitDiskLossyEdgeModel(), random.Random(0))
        medium.register_node(0, (0.0, 0.0))
        medium.register_node(1, (10.0, 0.0))
        medium.register_node(2, (60.0, 0.0))   # interference range only
        medium.register_node(3, (500.0, 0.0))  # out of range entirely
        return medium

    def test_frozen_tables_match_lazy_queries(self):
        lazy = self._medium()
        frozen = self._medium()
        frozen.freeze()
        assert frozen.frozen and not lazy.frozen
        for a in range(4):
            for b in range(4):
                assert frozen.link_prr(a, b) == lazy.link_prr(a, b)
                assert frozen.interferes(a, b) == lazy.interferes(a, b)
        assert frozen.neighbors_of(0) == lazy.neighbors_of(0)

    def test_freeze_is_idempotent_and_register_unfreezes(self):
        medium = self._medium()
        medium.freeze()
        medium.freeze()
        assert medium.frozen
        medium.register_node(4, (20.0, 0.0))
        assert not medium.frozen
        medium.freeze()
        assert medium.link_prr(0, 4) > 0.0

    def test_audience_of_is_the_interference_neighbourhood(self):
        medium = self._medium()
        medium.freeze()
        assert medium.audience_of(0) == frozenset({1, 2})
        assert medium.audience_of(3) == frozenset()

    def test_resolve_slot_with_grouping_matches_without(self):
        """Passing the precomputed per-channel grouping must not change
        arbitration results or RNG draws."""

        def run(grouped, fast_paths):
            medium = perfect_medium({0: (0, 0), 1: (1, 0), 2: (2, 0), 3: (3, 0)})
            medium.fast_paths = fast_paths
            medium.rng = random.Random(42)
            listeners = {1: 15, 2: 20, 3: 15}
            by_channel = {15: [1, 3], 20: [2]} if grouped else None
            results = medium.resolve_slot(
                [unicast(0, 1, channel=15)], listeners, by_channel
            )
            return [(r.receivers, r.delivered, r.acked) for r in results], medium.rng.random()

        baseline = run(grouped=False, fast_paths=False)
        assert run(grouped=True, fast_paths=True) == baseline
        assert run(grouped=False, fast_paths=True) == baseline

    def test_multi_transmitter_same_channel_fast_path_matches_reference(self):
        def run(fast_paths, frozen):
            medium = perfect_medium(
                {0: (0, 0), 1: (1, 0), 2: (2, 0), 3: (3, 0)},
                interference_pairs=[(0, 3), (1, 3), (0, 2), (1, 2)],
            )
            if frozen:
                medium.freeze()
            medium.fast_paths = fast_paths
            medium.rng = random.Random(7)
            intents = [unicast(0, 2, channel=15), unicast(1, 3, channel=15)]
            results = medium.resolve_slot(intents, {2: 15, 3: 15})
            outcome = [
                (r.receivers, r.delivered, r.acked, r.collided) for r in results
            ]
            return outcome, medium.total_collisions, medium.rng.random()

        baseline = run(fast_paths=False, frozen=False)
        assert run(fast_paths=True, frozen=False) == baseline
        assert run(fast_paths=True, frozen=True) == baseline


class TestVectorisedSameChannelResolve:
    """The numpy-accelerated audible scan must match the pure-Python scans."""

    def _random_medium(self, seed):
        rng = random.Random(seed)
        positions = {node_id: (rng.uniform(0, 60), rng.uniform(0, 60)) for node_id in range(24)}
        model = UnitDiskLossyEdgeModel(
            reliable_range=15.0, communication_range=25.0, interference_range=40.0
        )
        medium = Medium(model, random.Random(seed + 1))
        for node_id, position in positions.items():
            medium.register_node(node_id, position)
        medium.freeze()
        return medium, rng

    def _mixed_slot(self, rng):
        intents = []
        senders = rng.sample(range(24), 5)
        for sender in senders[:3]:
            packet = make_data_packet(sender, BROADCAST_ADDRESS, created_at=0.0)
            packet.link_source = sender
            packet.link_destination = BROADCAST_ADDRESS
            intents.append(
                TransmissionIntent(sender=sender, packet=packet, channel=20, expects_ack=False)
            )
        for sender in senders[3:]:
            receiver = rng.choice([n for n in range(24) if n not in senders])
            intents.append(unicast(sender, receiver, channel=20))
        listeners = {n: 20 for n in range(24) if n not in senders}
        return intents, listeners

    def test_numpy_path_matches_list_path(self):
        pytest.importorskip("numpy")
        for seed in range(6):
            outcomes = []
            for use_numpy in (True, False):
                medium, rng = self._random_medium(seed)
                if not use_numpy:
                    medium._np_interf = None
                intents, listeners = self._mixed_slot(random.Random(seed + 100))
                results = medium.resolve_slot(intents, dict(listeners))
                outcomes.append(
                    (
                        [
                            (sorted(r.receivers), r.delivered, r.acked, r.collided)
                            for r in results
                        ],
                        medium.total_collisions,
                        # The RNG stream must be consumed identically.
                        medium.rng.random(),
                    )
                )
            assert outcomes[0] == outcomes[1], f"seed {seed}"
