"""Tests for the reprolint static-analysis pass.

Every rule gets (at least) one detection test on a deliberately-seeded
fixture snippet and one test that the ``# reprolint: disable=RLxxx``
suppression comment silences exactly that finding.  The suite closes with
the merge-gate property: the shipped ``src/repro/`` tree is clean.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from tools.reprolint import lint_paths, lint_source
from tools.reprolint.__main__ import main as reprolint_main

REPO_ROOT = Path(__file__).resolve().parents[2]


def lint(source: str, path: str):
    """Lint a dedented snippet under a fake repo-relative path."""
    return lint_source(textwrap.dedent(source), path)


def rule_ids(violations):
    return [violation.rule for violation in violations]


# ----------------------------------------------------------------------
# RL001: no direct `random` use outside the RNG registry module
# ----------------------------------------------------------------------
class TestRL001:
    def test_detects_import_random(self):
        violations = lint("import random\n", "src/repro/net/foo.py")
        assert rule_ids(violations) == ["RL001"]

    def test_detects_from_random_import(self):
        violations = lint("from random import choice\n", "src/repro/mac/foo.py")
        assert rule_ids(violations) == ["RL001"]

    def test_rng_module_is_allowed(self):
        violations = lint("import random\n", "src/repro/sim/rng.py")
        assert violations == []

    def test_suppression(self):
        violations = lint(
            "import random  # reprolint: disable=RL001\n", "src/repro/net/foo.py"
        )
        assert violations == []


# ----------------------------------------------------------------------
# RL002: no wall-clock reads inside simulation code
# ----------------------------------------------------------------------
class TestRL002:
    def test_detects_time_attribute_read(self):
        violations = lint(
            """
            import time

            def f():
                return time.perf_counter()
            """,
            "src/repro/sim/foo.py",
        )
        assert rule_ids(violations) == ["RL002"]

    def test_detects_aliased_module(self):
        violations = lint(
            """
            import time as _t

            def f():
                return _t.monotonic()
            """,
            "src/repro/mac/foo.py",
        )
        assert rule_ids(violations) == ["RL002"]

    def test_detects_from_import(self):
        violations = lint(
            "from time import perf_counter\n", "src/repro/sim/foo.py"
        )
        assert rule_ids(violations) == ["RL002"]

    def test_detects_datetime_now(self):
        violations = lint(
            """
            from datetime import datetime

            def f():
                return datetime.now()
            """,
            "src/repro/net/foo.py",
        )
        assert rule_ids(violations) == ["RL002"]

    def test_cli_module_is_allowed(self):
        violations = lint(
            """
            import time

            def f():
                return time.perf_counter()
            """,
            "src/repro/experiments/__main__.py",
        )
        assert violations == []

    def test_simclock_now_is_not_a_wallclock_read(self):
        violations = lint(
            """
            def f(clock):
                return clock.now
            """,
            "src/repro/sim/foo.py",
        )
        assert violations == []

    def test_suppression(self):
        violations = lint(
            """
            import time

            def f():
                return time.perf_counter()  # reprolint: disable=RL002
            """,
            "src/repro/sim/foo.py",
        )
        assert violations == []


# ----------------------------------------------------------------------
# RL003: no unordered-set iteration in RNG/event-scheduling modules
# ----------------------------------------------------------------------
class TestRL003:
    def test_detects_for_over_annotated_set_param(self):
        violations = lint(
            """
            def f(items: set):
                for item in items:
                    print(item)
            """,
            "src/repro/mac/foo.py",
        )
        assert rule_ids(violations) == ["RL003"]

    def test_detects_for_over_set_call_local(self):
        violations = lint(
            """
            def f(values):
                pending = set(values)
                for item in pending:
                    print(item)
            """,
            "src/repro/net/foo.py",
        )
        assert rule_ids(violations) == ["RL003"]

    def test_detects_self_attribute_set(self):
        violations = lint(
            """
            class Tracker:
                def __init__(self):
                    self._dirty = set()

                def flush(self):
                    for node in self._dirty:
                        node.refresh()
            """,
            "src/repro/net/foo.py",
        )
        assert rule_ids(violations) == ["RL003"]

    def test_detects_set_difference_iteration(self):
        violations = lint(
            """
            def f(old: set, new: set):
                for item in old - new:
                    print(item)
            """,
            "src/repro/net/foo.py",
        )
        assert rule_ids(violations) == ["RL003"]

    def test_detects_order_sensitive_consumer(self):
        violations = lint(
            """
            def f(items: set):
                return list(items)
            """,
            "src/repro/sim/foo.py",
        )
        assert rule_ids(violations) == ["RL003"]

    def test_sorted_wrapper_is_clean(self):
        violations = lint(
            """
            def f(items: set):
                for item in sorted(items):
                    print(item)
            """,
            "src/repro/mac/foo.py",
        )
        assert violations == []

    def test_order_insensitive_reduction_is_clean(self):
        violations = lint(
            """
            def f(items: set):
                return min(items) + sum(items)
            """,
            "src/repro/mac/foo.py",
        )
        assert violations == []

    def test_module_outside_packages_is_not_checked(self):
        violations = lint(
            """
            def f(items: set):
                for item in items:
                    print(item)
            """,
            "src/repro/metrics/foo.py",
        )
        assert violations == []

    def test_suppression(self):
        violations = lint(
            """
            def f(items: set):
                for item in items:  # reprolint: disable=RL003
                    print(item)
            """,
            "src/repro/mac/foo.py",
        )
        assert violations == []


# ----------------------------------------------------------------------
# RL004: tracked-field mutations must bump the version hook
# ----------------------------------------------------------------------
class TestRL004:
    def test_detects_mutation_without_bump(self):
        violations = lint(
            """
            class Slotframe:
                def add_cell(self, cell):
                    self._table[cell.slot_offset] = [cell]
            """,
            "src/repro/mac/slotframe.py",
        )
        assert rule_ids(violations) == ["RL004"]

    def test_detects_mutating_method_call_without_bump(self):
        violations = lint(
            """
            class Slotframe:
                def add_cell(self, cell):
                    self._table.setdefault(cell.slot_offset, []).append(cell)
            """,
            "src/repro/mac/slotframe.py",
        )
        assert rule_ids(violations) == ["RL004"]

    def test_detects_mutation_through_local_alias(self):
        violations = lint(
            """
            class Slotframe:
                def remove_cell(self, cell):
                    bucket = self._table[cell.slot_offset]
                    bucket.remove(cell)
            """,
            "src/repro/mac/slotframe.py",
        )
        assert rule_ids(violations) == ["RL004"]

    def test_bumped_method_is_clean(self):
        violations = lint(
            """
            class Slotframe:
                def add_cell(self, cell):
                    self._table.setdefault(cell.slot_offset, []).append(cell)
                    self._mutated()
            """,
            "src/repro/mac/slotframe.py",
        )
        assert violations == []

    def test_attribute_bump_counts(self):
        violations = lint(
            """
            class EtxEstimator:
                def record(self, neighbor):
                    self._etx[neighbor] = 1.0
                    self.version += 1
            """,
            "src/repro/phy/linkstats.py",
        )
        assert violations == []

    def test_init_is_exempt(self):
        violations = lint(
            """
            class Slotframe:
                def __init__(self):
                    self._table = {}
            """,
            "src/repro/mac/slotframe.py",
        )
        assert violations == []

    def test_unregistered_class_is_not_checked(self):
        violations = lint(
            """
            class SomethingElse:
                def add(self, item):
                    self._table[item] = 1
            """,
            "src/repro/mac/foo.py",
        )
        assert violations == []

    def test_suppression(self):
        violations = lint(
            """
            class Slotframe:
                def add_cell(self, cell):
                    self._table[cell.slot_offset] = [cell]  # reprolint: disable=RL004
            """,
            "src/repro/mac/slotframe.py",
        )
        assert violations == []


# ----------------------------------------------------------------------
# RL005: __slots__ required on classes in hot modules
# ----------------------------------------------------------------------
class TestRL005:
    def test_detects_missing_slots(self):
        violations = lint(
            """
            class Cell:
                def __init__(self):
                    self.slot_offset = 0
            """,
            "src/repro/mac/cell.py",
        )
        assert rule_ids(violations) == ["RL005"]

    def test_slots_class_is_clean(self):
        violations = lint(
            """
            class Cell:
                __slots__ = ("slot_offset",)

                def __init__(self):
                    self.slot_offset = 0
            """,
            "src/repro/mac/cell.py",
        )
        assert violations == []

    def test_enum_is_exempt(self):
        violations = lint(
            """
            from enum import Enum

            class CellPurpose(Enum):
                BROADCAST = "broadcast"
            """,
            "src/repro/mac/cell.py",
        )
        assert violations == []

    def test_cold_module_is_not_checked(self):
        violations = lint(
            """
            class Report:
                pass
            """,
            "src/repro/metrics/foo.py",
        )
        assert violations == []

    def test_suppression(self):
        violations = lint(
            """
            class Cell:  # reprolint: disable=RL005
                pass
            """,
            "src/repro/mac/cell.py",
        )
        assert violations == []


# ----------------------------------------------------------------------
# RL006: integer settlement counters stay integer
# ----------------------------------------------------------------------
class TestRL006:
    def test_detects_float_constant(self):
        violations = lint(
            """
            class DutyCycleMeter:
                __slots__ = ("tx_slots",)

                def record(self):
                    self.tx_slots += 1.0
            """,
            "src/repro/mac/duty_cycle.py",
        )
        assert rule_ids(violations) == ["RL006"]

    def test_detects_true_division(self):
        violations = lint(
            """
            def settle(meter, debt):
                meter.sleep_slots = debt / 2
            """,
            "src/repro/mac/tsch.py",
        )
        assert rule_ids(violations) == ["RL006"]

    def test_integer_arithmetic_is_clean(self):
        violations = lint(
            """
            def settle(meter, debt):
                meter.sleep_slots += debt
                meter.total_slots += debt // 2
            """,
            "src/repro/mac/tsch.py",
        )
        assert violations == []

    def test_int_cast_cleanses(self):
        violations = lint(
            """
            def settle(meter, seconds, slot_s):
                meter.total_slots = int(seconds / slot_s)
            """,
            "src/repro/mac/tsch.py",
        )
        assert violations == []

    def test_cold_module_is_not_checked(self):
        violations = lint(
            """
            def f(obj):
                obj.tx_slots = 0.5
            """,
            "src/repro/metrics/foo.py",
        )
        assert violations == []

    def test_suppression(self):
        violations = lint(
            """
            class DutyCycleMeter:
                __slots__ = ("tx_slots",)

                def record(self):
                    self.tx_slots += 1.0  # reprolint: disable=RL006
            """,
            "src/repro/mac/duty_cycle.py",
        )
        assert violations == []


# ----------------------------------------------------------------------
# suppression mechanics
# ----------------------------------------------------------------------
class TestSuppression:
    def test_bare_disable_silences_every_rule(self):
        violations = lint(
            "import random  # reprolint: disable\n", "src/repro/net/foo.py"
        )
        assert violations == []

    def test_disabling_one_rule_keeps_the_other(self):
        violations = lint(
            """
            import time

            def f(items: set):
                for item in items:
                    time.sleep(1)  # reprolint: disable=RL002
            """,
            "src/repro/sim/foo.py",
        )
        assert rule_ids(violations) == ["RL003"]

    def test_multiple_rules_in_one_comment(self):
        violations = lint(
            """
            class Cell:  # reprolint: disable=RL005,RL004
                pass
            """,
            "src/repro/mac/cell.py",
        )
        assert violations == []


# ----------------------------------------------------------------------
# CLI and merge-gate properties
# ----------------------------------------------------------------------
class TestCli:
    def test_exit_codes(self, tmp_path):
        dirty = tmp_path / "repro" / "net" / "dirty.py"
        dirty.parent.mkdir(parents=True)
        dirty.write_text("import random\n")
        clean = tmp_path / "repro" / "net" / "clean.py"
        clean.write_text("x = 1\n")
        assert reprolint_main([str(dirty)]) == 1
        assert reprolint_main([str(clean)]) == 0

    def test_json_output_counts(self, tmp_path, capsys):
        dirty = tmp_path / "repro" / "net" / "dirty.py"
        dirty.parent.mkdir(parents=True)
        dirty.write_text("import random\n")
        status = reprolint_main([str(dirty), "--format", "json"])
        report = json.loads(capsys.readouterr().out)
        assert status == 1
        assert report["total"] == 1
        assert report["counts"]["RL001"] == 1
        assert report["counts"]["RL005"] == 0
        assert report["violations"][0]["rule"] == "RL001"
        assert report["violations"][0]["line"] == 1

    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        bad = tmp_path / "repro" / "net" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(:\n")
        violations = lint_paths([str(bad)])
        assert [violation.rule for violation in violations] == ["RL000"]


class TestShippedTree:
    def test_src_tree_is_clean(self):
        violations = lint_paths([str(REPO_ROOT / "src")])
        assert violations == [], "\n".join(v.format() for v in violations)
