"""Tests for the 6P transaction layer."""

from repro.sim.events import EventQueue
from repro.sixtop.layer import SixPConfig, SixPLayer
from repro.sixtop.messages import (
    CellDescriptor,
    SixPCommand,
    SixPMessage,
    SixPReturnCode,
)


class TwoNodeHarness:
    """Two 6P layers connected by an in-memory channel with optional loss."""

    def __init__(self, timeout_s=2.0, max_retries=1):
        self.queue = EventQueue()
        config = SixPConfig(timeout_s=timeout_s, max_retries=max_retries)
        self.outboxes = {1: [], 2: []}
        self.layers = {
            node_id: SixPLayer(
                node_id, config, self.queue, self.outboxes[node_id].append
            )
            for node_id in (1, 2)
        }
        #: Packets to silently drop: set of (sender, kind) where kind is
        #: "request" or "response".
        self.drop = set()

    def deliver_all(self):
        """Move every queued packet to its destination (unless dropped)."""
        moved = True
        while moved:
            moved = False
            for sender, outbox in self.outboxes.items():
                while outbox:
                    packet = outbox.pop(0)
                    message = SixPMessage.from_payload(packet.payload)
                    kind = message.message_type.value
                    if (sender, kind) in self.drop:
                        continue
                    self.layers[packet.link_destination].process_packet(packet)
                    moved = True


class TestTransactions:
    def test_successful_add_transaction(self):
        h = TwoNodeHarness()
        granted = [CellDescriptor(5, 3)]
        h.layers[2].request_handler = lambda peer, msg: (
            SixPReturnCode.SUCCESS,
            {"cell_list": granted, "num_cells": 1},
        )
        outcomes = []
        assert h.layers[1].send_request(
            2, SixPCommand.ADD, num_cells=1,
            callback=lambda peer, req, resp: outcomes.append((peer, resp)),
        )
        h.deliver_all()
        assert len(outcomes) == 1
        peer, response = outcomes[0]
        assert peer == 2
        assert response.return_code is SixPReturnCode.SUCCESS
        assert response.cell_list == granted
        assert not h.layers[1].has_pending_transaction(2)

    def test_one_transaction_per_peer(self):
        h = TwoNodeHarness()
        h.layers[2].request_handler = lambda peer, msg: (SixPReturnCode.SUCCESS, {})
        assert h.layers[1].send_request(2, SixPCommand.ADD, num_cells=1)
        assert not h.layers[1].send_request(2, SixPCommand.ADD, num_cells=1)
        h.deliver_all()
        assert h.layers[1].send_request(2, SixPCommand.ADD, num_cells=1)

    def test_request_without_handler_rejected(self):
        h = TwoNodeHarness()
        outcomes = []
        h.layers[1].send_request(
            2, SixPCommand.ADD, callback=lambda peer, req, resp: outcomes.append(resp)
        )
        h.deliver_all()
        assert outcomes[0].return_code is SixPReturnCode.ERR

    def test_handler_receives_request_fields(self):
        h = TwoNodeHarness()
        seen = []
        h.layers[2].request_handler = lambda peer, msg: (
            seen.append((peer, msg.command, msg.num_cells, list(msg.cell_list))),
            (SixPReturnCode.SUCCESS, {}),
        )[1]
        h.layers[1].send_request(
            2, SixPCommand.DELETE, num_cells=2, cell_list=[CellDescriptor(1, 1)]
        )
        h.deliver_all()
        assert seen == [(1, SixPCommand.DELETE, 2, [CellDescriptor(1, 1)])]

    def test_sequence_numbers_increment(self):
        h = TwoNodeHarness()
        seqnums = []
        h.layers[2].request_handler = lambda peer, msg: (
            seqnums.append(msg.seqnum),
            (SixPReturnCode.SUCCESS, {}),
        )[1]
        for _ in range(3):
            h.layers[1].send_request(2, SixPCommand.ADD, num_cells=1)
            h.deliver_all()
        assert seqnums == [0, 1, 2]


class TestTimeoutsAndRetries:
    def test_timeout_reports_none(self):
        h = TwoNodeHarness(timeout_s=1.0, max_retries=0)
        outcomes = []
        h.layers[1].send_request(
            2, SixPCommand.ADD, callback=lambda peer, req, resp: outcomes.append(resp)
        )
        # Never deliver anything; let the timeout fire.
        h.queue.run_until(5.0)
        assert outcomes == [None]
        assert h.layers[1].timeouts == 1
        assert not h.layers[1].has_pending_transaction(2)

    def test_retry_after_timeout_succeeds(self):
        h = TwoNodeHarness(timeout_s=1.0, max_retries=1)
        h.layers[2].request_handler = lambda peer, msg: (SixPReturnCode.SUCCESS, {})
        outcomes = []
        h.layers[1].send_request(
            2, SixPCommand.ADD, callback=lambda peer, req, resp: outcomes.append(resp)
        )
        # First transmission lost; the retry (after 1 s) is delivered.
        h.outboxes[1].clear()
        h.queue.run_until(1.5)
        h.deliver_all()
        assert len(outcomes) == 1
        assert outcomes[0] is not None
        assert outcomes[0].return_code is SixPReturnCode.SUCCESS

    def test_lost_response_replayed_on_duplicate_request(self):
        """RFC 8480 duplicate handling: the responder must not re-apply the
        command nor reject the retry -- it replays the cached response."""
        h = TwoNodeHarness(timeout_s=1.0, max_retries=1)
        calls = []
        h.layers[2].request_handler = lambda peer, msg: (
            calls.append(msg.seqnum),
            (SixPReturnCode.SUCCESS, {"cell_list": [CellDescriptor(7, 1)]}),
        )[1]
        outcomes = []
        h.layers[1].send_request(
            2, SixPCommand.ADD, num_cells=1,
            callback=lambda peer, req, resp: outcomes.append(resp),
        )
        # Deliver the request but lose the response.
        h.drop.add((2, "response"))
        h.deliver_all()
        h.drop.clear()
        # Let the initiator time out and retransmit the same seqnum.
        h.queue.run_until(1.5)
        h.deliver_all()
        assert len(calls) == 1, "the command must be applied exactly once"
        assert outcomes and outcomes[0].cell_list == [CellDescriptor(7, 1)]

    def test_stale_response_ignored(self):
        h = TwoNodeHarness(timeout_s=1.0, max_retries=0)
        h.layers[2].request_handler = lambda peer, msg: (SixPReturnCode.SUCCESS, {})
        outcomes = []
        h.layers[1].send_request(
            2, SixPCommand.ADD, callback=lambda peer, req, resp: outcomes.append(resp)
        )
        # Capture the in-flight response, let the transaction time out, then
        # start a new transaction and replay the stale response.
        h.deliver_all_requests_only = None
        request_packet = h.outboxes[1].pop(0)
        h.layers[2].process_packet(request_packet)
        stale_response = h.outboxes[2].pop(0)
        h.queue.run_until(2.0)  # transaction 0 times out
        assert outcomes == [None]
        h.layers[1].send_request(
            2, SixPCommand.ADD, callback=lambda peer, req, resp: outcomes.append(resp)
        )
        h.layers[1].process_packet(stale_response)
        assert len(outcomes) == 1  # stale response did not complete the new transaction
