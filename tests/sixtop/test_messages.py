"""Tests for 6P message encoding/decoding."""


from repro.net.packet import PacketType
from repro.sixtop.messages import (
    ASK_CHANNEL_COMMAND_CODE,
    CellDescriptor,
    SixPCommand,
    SixPMessage,
    SixPMessageType,
    SixPReturnCode,
    make_sixp_packet,
)


class TestCommandCodes:
    def test_ask_channel_code_matches_paper(self):
        """Fig. 4: the ASK-CHANNEL command uses code 0x0A."""
        assert ASK_CHANNEL_COMMAND_CODE == 0x0A
        assert SixPCommand.ASK_CHANNEL.value == 0x0A

    def test_rfc8480_codes(self):
        assert SixPCommand.ADD.value == 0x01
        assert SixPCommand.DELETE.value == 0x02


class TestCellDescriptor:
    def test_as_tuple(self):
        assert CellDescriptor(3, 5).as_tuple() == (3, 5)

    def test_hashable_and_equal(self):
        assert CellDescriptor(1, 2) == CellDescriptor(1, 2)
        assert len({CellDescriptor(1, 2), CellDescriptor(1, 2)}) == 1


class TestSixPMessageRoundtrip:
    def test_request_roundtrip(self):
        message = SixPMessage(
            message_type=SixPMessageType.REQUEST,
            command=SixPCommand.ADD,
            seqnum=7,
            sf_id=0x0A,
            num_cells=3,
            cell_list=[CellDescriptor(1, 2), CellDescriptor(4, 5)],
            metadata={"purpose": "data"},
        )
        decoded = SixPMessage.from_payload(message.to_payload())
        assert decoded.message_type is SixPMessageType.REQUEST
        assert decoded.command is SixPCommand.ADD
        assert decoded.seqnum == 7
        assert decoded.num_cells == 3
        assert decoded.cell_list == [CellDescriptor(1, 2), CellDescriptor(4, 5)]
        assert decoded.metadata == {"purpose": "data"}
        assert decoded.return_code is None

    def test_response_roundtrip(self):
        message = SixPMessage(
            message_type=SixPMessageType.RESPONSE,
            command=SixPCommand.ASK_CHANNEL,
            seqnum=1,
            return_code=SixPReturnCode.SUCCESS,
            channel_offset=4,
        )
        decoded = SixPMessage.from_payload(message.to_payload())
        assert decoded.return_code is SixPReturnCode.SUCCESS
        assert decoded.channel_offset == 4
        assert decoded.command is SixPCommand.ASK_CHANNEL

    def test_error_response_roundtrip(self):
        message = SixPMessage(
            message_type=SixPMessageType.RESPONSE,
            command=SixPCommand.ADD,
            seqnum=2,
            return_code=SixPReturnCode.ERR_NORES,
        )
        decoded = SixPMessage.from_payload(message.to_payload())
        assert decoded.return_code is SixPReturnCode.ERR_NORES
        assert decoded.channel_offset is None


class TestMakePacket:
    def test_packet_wrapping(self):
        message = SixPMessage(
            message_type=SixPMessageType.REQUEST, command=SixPCommand.ADD, seqnum=0
        )
        packet = make_sixp_packet(3, 9, message, now=1.5)
        assert packet.ptype is PacketType.SIXP
        assert packet.link_source == 3
        assert packet.link_destination == 9
        assert packet.created_at == 1.5
        assert not packet.is_broadcast
        assert SixPMessage.from_payload(packet.payload).command is SixPCommand.ADD
